"""Tests for the grouping mechanism (paper Section III)."""

import random

import pytest

from repro.core.base_file import FirstResponsePolicy
from repro.core.classes import DocumentClass
from repro.core.config import AnonymizationConfig, GroupingConfig
from repro.core.grouping import Grouper
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder
from repro.url.parts import URLParts
from repro.url.rules import RuleBook


def doc(category: str, item: int, size: int = 4000) -> bytes:
    """Synthetic docs: same-category docs share a big skeleton."""
    skeleton = (f"<skeleton category={category}>" * (size // 30)).encode()
    detail = (f"<item {item} unique content {item}>" * 20).encode()
    return skeleton + detail


def rpage(seed: int, size: int = 4000) -> bytes:
    """Random-content page (high shingle diversity, for sketch tests)."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(size))


def family_page(family: int, item: int) -> bytes:
    """Pages of one family share a big random skeleton + small unique tail."""
    return rpage(family, 3800) + rpage(family * 1000 + item, 200)


def make_grouper(config: GroupingConfig | None = None, seed: int = 1) -> Grouper:
    estimator = LightEstimator()
    encoder = VdeltaEncoder()
    counter = iter(range(1, 10_000))

    def factory(server: str, hint: str) -> DocumentClass:
        cls = DocumentClass(
            class_id=f"c{next(counter)}",
            server=server,
            hint=hint,
            anonymization=AnonymizationConfig(enabled=False),
            policy=FirstResponsePolicy(),
            encoder=encoder,
            estimator=estimator,
        )
        return cls

    return Grouper(
        config=config or GroupingConfig(),
        rulebook=RuleBook(),
        estimator=estimator,
        class_factory=factory,
        seed=seed,
    )


def classify(grouper: Grouper, url: str, document: bytes):
    """Classify and, if a class was created, give it the doc as base."""
    cls, created = grouper.classify(url, document)
    if created:
        cls.adopt_base(document, owner_user=None, now=0.0)
    return cls, created


class TestBasicGrouping:
    def test_first_request_creates_class(self):
        grouper = make_grouper()
        cls, created = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert created
        assert grouper.class_count() == 1
        assert "www.a.com/laptops?id=1" in cls.members

    def test_same_url_reuses_class_without_search(self):
        grouper = make_grouper()
        cls1, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        cls2, created = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert not created
        assert cls1 is cls2
        assert cls1.stats.hits == 2

    def test_similar_document_joins_class(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        cls, created = classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert not created
        assert grouper.class_count() == 1
        assert len(cls.members) == 2

    def test_dissimilar_document_new_class(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        _, created = classify(grouper, "www.a.com/desktops?id=1", doc("desktops", 1))
        assert created
        assert grouper.class_count() == 2

    def test_different_server_never_shares_class(self):
        """"It is very unlikely that two documents originating from
        different servers will be close enough" — new class outright."""
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        _, created = classify(grouper, "www.b.com/laptops?id=1", doc("laptops", 1))
        assert created
        assert grouper.class_count() == 2

    def test_hint_restricts_candidates(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        classify(grouper, "www.a.com/desktops?id=1", doc("desktops", 1))
        # same hint-part as the laptops class: only that class is probed
        cls, created = classify(grouper, "www.a.com/laptops?id=3", doc("laptops", 3))
        assert not created
        assert cls.hint == "laptops"


class TestSearchHeuristics:
    def test_max_tries_bounds_probes(self):
        config = GroupingConfig(max_tries=2, match_threshold=0.01)
        grouper = make_grouper(config)
        # low threshold: nothing ever matches; each request probes <= 2
        for i in range(6):
            classify(grouper, f"www.a.com/cat{i}?id=0", doc(f"cat{i}", 0))
        per_request_tries = grouper.stats.total_tries / max(grouper.stats.requests - 1, 1)
        assert per_request_tries <= 2

    def test_matches_within_couple_of_tries_with_hints(self):
        """Section VI-B: 'groups requests in classes after a couple of
        tries' on well-structured sites."""
        grouper = make_grouper()
        for i in range(8):
            classify(grouper, f"www.a.com/laptops?id={i}", doc("laptops", i))
        assert grouper.stats.mean_tries <= 2

    def test_first_match_vs_best_match(self):
        best_config = GroupingConfig(first_match=False)
        grouper = make_grouper(best_config)
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        cls, created = classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert not created

    def test_popularity_ordering_prefers_hot_classes(self):
        grouper = make_grouper(GroupingConfig(max_tries=1))
        # Build two classes with same hint via manual registry manipulation:
        # class A hot, class B cold; a new ambiguous doc should probe A first.
        cls_a, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        for _ in range(5):
            classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert cls_a.popularity >= 5


class TestManualGrouping:
    def test_manual_pin_overrides_search(self):
        grouper = make_grouper()
        cls, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        grouper.pin_manual(r"www\.a\.com/special", cls.class_id)
        pinned, created = classify(
            grouper, "www.a.com/special?id=9", doc("desktops", 9)
        )
        assert not created
        assert pinned is cls
        assert grouper.stats.manual == 1

    def test_pin_to_unknown_class_rejected(self):
        grouper = make_grouper()
        with pytest.raises(KeyError):
            grouper.pin_manual(r".*", "no-such-class")


class TestStats:
    def test_created_and_matched_counts(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        classify(grouper, "www.a.com/desktops?id=1", doc("desktops", 1))
        assert grouper.stats.created == 2
        assert grouper.stats.matched == 1

    def test_tries_histogram_populated(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert sum(grouper.stats.tries_histogram.values()) == 1


class TestSketchPolicy:
    def test_default_policy_is_sketch(self):
        assert GroupingConfig().policy == "sketch"

    def test_content_aware_match_without_hint(self):
        """A fresh-hint URL with near-duplicate content joins the class
        through the LSH index — the case the old same-server scan paid
        O(classes) for."""
        grouper = make_grouper()
        first, _ = classify(grouper, "www.a.com/laptops?id=1", family_page(1, 1))
        # Unique hint: no same-hint class exists for this key.
        cls, created = classify(
            grouper, "www.a.com/session-xyz/laptops?id=2", family_page(1, 2)
        )
        assert not created
        assert cls is first
        assert grouper.stats.sketch_hits >= 1

    def test_sketch_miss_creates_class(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", family_page(1, 1))
        _, created = classify(
            grouper, "www.a.com/session-abc/other?id=1", family_page(99, 1)
        )
        assert created
        assert grouper.stats.sketch_misses >= 1

    def test_scan_policy_still_scans_same_server(self):
        grouper = make_grouper(GroupingConfig(policy="scan"))
        first, _ = classify(grouper, "www.a.com/laptops?id=1", family_page(1, 1))
        cls, created = classify(
            grouper, "www.a.com/session-xyz/laptops?id=2", family_page(1, 2)
        )
        assert not created and cls is first
        assert grouper.stats.sketch_hits == 0 == grouper.stats.sketch_misses

    def test_small_hinted_pool_skips_the_sketch_lookup(self):
        """Heuristic 2 intact: a bounded same-hint pool is probed whole,
        without consulting (or needing) the LSH index."""
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        lookups = grouper.stats.sketch_hits + grouper.stats.sketch_misses
        cls, created = classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert not created and cls.hint == "laptops"
        assert grouper.stats.sketch_hits + grouper.stats.sketch_misses == lookups

    def test_new_class_registered_under_document_signature(self):
        grouper = make_grouper()
        cls, created = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert created
        assert cls.base_signature is not None
        assert grouper._sketch_index.candidates(cls.base_signature)[0] == cls.class_id

    def test_refresh_sketch_tracks_base_changes(self):
        grouper = make_grouper()
        cls, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        old = cls.base_signature
        with cls.lock:
            cls.adopt_base(doc("desktops", 5), owner_user=None, now=1.0)
            refreshed = grouper.refresh_sketch(cls)
        assert refreshed is not None and refreshed != old
        assert cls.base_signature == refreshed
        # The index moved the class to its new content's buckets.
        assert cls.class_id in grouper._sketch_index.candidates(refreshed)
        # And a second refresh with an unchanged base is a no-op.
        with cls.lock:
            assert grouper.refresh_sketch(cls) == refreshed

    def test_refresh_sketch_unregisters_baseless_class(self):
        grouper = make_grouper()
        cls, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        sig = cls.base_signature
        with cls.lock:
            cls.release_base()
            assert grouper.refresh_sketch(cls) is None
        assert cls.base_signature is None
        assert cls.class_id not in grouper._sketch_index.candidates(sig)


class TestBestMatchTries:
    def test_records_probe_count_of_best_match(self):
        """Regression: best-match mode used to record the loop-final try
        count, inflating the histogram whenever probing continued past
        the eventual best match."""
        grouper = make_grouper(GroupingConfig(first_match=False, match_threshold=0.5))
        # Two matching same-hint classes; the popular one is probed first
        # and is also the better (identical-content) match.
        best, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        other, _ = classify(grouper, "www.a.com/laptops2?id=1", doc("laptops", 500))
        # Re-key 'other' under the same hint so both are eligible.
        with grouper._registry_lock:
            grouper._by_key[("www.a.com", "laptops")].append(other)
        for _ in range(5):
            classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        histogram_before = dict(grouper.stats.tries_histogram)
        cls, created = classify(grouper, "www.a.com/laptops?id=9", doc("laptops", 1))
        assert not created and cls is best
        new = {
            tries: count - histogram_before.get(tries, 0)
            for tries, count in grouper.stats.tries_histogram.items()
            if count != histogram_before.get(tries, 0)
        }
        # Both candidates were probed (no early stop), but the best match
        # surfaced on probe 1 — that is what the histogram must record.
        assert new == {1: 1}
        assert grouper.stats.total_tries >= 2


class TestShardRngDeterminism:
    def test_shard_draws_independent_of_other_shards(self):
        """Regression for the shared-RNG race: one shard's random probe
        order must be a pure function of its own history, not of how many
        draws other shards made in between."""
        eligible_builder = lambda g: [  # noqa: E731 - tiny test helper
            classify(g, f"www.a.com/cat{i}?id=0", doc(f"cat{i}", 0))[0]
            for i in range(12)
        ]
        # Tiny threshold: nothing matches, so all 12 classes are created.
        config = GroupingConfig(max_tries=4, popular_fraction=0.25, match_threshold=0.01)

        g1 = make_grouper(config)
        classes1 = eligible_builder(g1)
        order1 = g1._probe_order(classes1, g1._shard_rng(("www.a.com", "x")))

        g2 = make_grouper(config)
        classes2 = eligible_builder(g2)
        # Interleave draws from OTHER shards before shard x draws.
        for key in [("www.a.com", "y"), ("www.b.com", "z")]:
            g2._probe_order(classes2, g2._shard_rng(key))
        order2 = g2._probe_order(classes2, g2._shard_rng(("www.a.com", "x")))

        assert [c.class_id for c in order1] == [c.class_id for c in order2]

    def test_different_seeds_diverge(self):
        config = GroupingConfig(max_tries=4, popular_fraction=0.0, match_threshold=0.01)
        orders = []
        for seed in (1, 2):
            g = make_grouper(config, seed=seed)
            classes = [
                classify(g, f"www.a.com/cat{i}?id=0", doc(f"cat{i}", 0))[0]
                for i in range(12)
            ]
            order = g._probe_order(classes, g._shard_rng(("www.a.com", "x")))
            orders.append([classes.index(c) for c in order])
        assert orders[0] != orders[1]


class TestCreateClass:
    def test_create_class_registers_key(self):
        grouper = make_grouper()
        parts = URLParts("www.x.com", "books", "id=1")
        cls = grouper.create_class(parts)
        assert cls.key == ("www.x.com", "books")
        assert grouper.class_by_id(cls.class_id) is cls


class TestUrlClassMap:
    def test_class_for_url_tracks_membership(self):
        grouper = make_grouper()
        assert grouper.class_for_url("www.a.com/x?id=1") is None
        cls, created = classify(grouper, "www.a.com/x?id=1", doc("x", 1))
        assert created
        assert grouper.class_for_url("www.a.com/x?id=1") is cls
        # A second member URL matched into the same class maps there too.
        other, created = classify(grouper, "www.a.com/x?id=2", doc("x", 2))
        assert other is cls and not created
        assert grouper.class_for_url("www.a.com/x?id=2") is cls
        assert grouper.class_for_url("www.a.com/never-seen") is None

    def test_exact_delta_probe_receives_class(self):
        """exact_delta probes get the candidate class (for its cached
        index), not raw base bytes."""
        probed: list = []

        def exact_delta(cls, document):
            probed.append(cls)
            return 0  # always "identical": forces a match

        grouper = make_grouper(GroupingConfig(use_light_estimator=False))
        grouper._exact_delta = exact_delta
        first, _ = classify(grouper, "www.a.com/x?id=1", doc("x", 1))
        classify(grouper, "www.a.com/x?id=2", doc("x", 2))
        assert probed and all(candidate is first for candidate in probed)
