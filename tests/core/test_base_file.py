"""Tests for base-file selection policies (paper Section IV, Table III)."""

import random

import pytest

from repro.core.base_file import (
    FirstResponsePolicy,
    OnlineOptimalPolicy,
    RandomizedPolicy,
    make_policy,
    offline_best,
)
from repro.core.config import BaseFileConfig, EvictionVariant


def toy_delta(base: bytes, target: bytes) -> int:
    """Cheap, metric-like stand-in for delta size in policy unit tests."""
    return abs(len(base) - len(target)) + sum(
        1 for a, b in zip(base, target) if a != b
    )


def docs_around(center: int, spread: list[int]) -> list[bytes]:
    """Documents whose pairwise toy-deltas reflect distance on a line."""
    return [bytes([65]) * (center + s) for s in spread]


class TestFirstResponse:
    def test_uses_first_forever(self):
        policy = FirstResponsePolicy()
        policy.observe(b"first", "u1")
        policy.observe(b"second", "u2")
        assert policy.current() == b"first"
        assert policy.current_owner() == "u1"

    def test_empty(self):
        assert FirstResponsePolicy().current() is None

    def test_flush(self):
        policy = FirstResponsePolicy()
        policy.observe(b"first")
        policy.flush()
        assert policy.current() is None


class TestRandomized:
    def _policy(self, p=1.0, k=4, eviction=EvictionVariant.WORST, seed=1):
        config = BaseFileConfig(
            sample_probability=p, capacity=k, eviction=eviction
        )
        return RandomizedPolicy(config, toy_delta, random.Random(seed))

    def test_samples_with_probability_one(self):
        policy = self._policy(p=1.0, k=8)
        for i in range(5):
            policy.observe(bytes([65]) * (10 + i))
        assert len(policy.stored_documents) == 5

    def test_sampling_probability_respected(self):
        policy = self._policy(p=0.2, k=100)
        for i in range(500):
            policy.observe(bytes([65]) * (10 + i % 7))
        stored = len(policy.stored_documents)
        assert 50 < stored < 150  # ~100 expected

    def test_capacity_enforced(self):
        policy = self._policy(p=1.0, k=3)
        for i in range(10):
            policy.observe(bytes([65]) * (10 + i))
        assert len(policy.stored_documents) == 3

    def test_picks_medoid(self):
        policy = self._policy(p=1.0, k=10)
        # cluster at length 100, outlier at 200: medoid is in the cluster
        for doc in docs_around(100, [0, 1, 2, 3, 100]):
            policy.observe(doc)
        assert len(policy.current()) in (101, 102)  # central cluster member

    def test_evicts_worst(self):
        policy = self._policy(p=1.0, k=3)
        for doc in docs_around(100, [0, 1, 2]):
            policy.observe(doc)
        policy.observe(bytes([65]) * 500)  # clearly the worst candidate
        lengths = sorted(len(d) for d in policy.stored_documents)
        assert 500 not in lengths

    def test_flush_empties_store(self):
        policy = self._policy(p=1.0)
        policy.observe(b"doc")
        policy.flush()
        assert policy.current() is None

    def test_owner_tracked(self):
        policy = self._policy(p=1.0, k=4)
        policy.observe(bytes([65]) * 10, "alice")
        assert policy.current_owner() == "alice"

    def test_utility_of(self):
        policy = self._policy(p=1.0, k=4)
        for doc in docs_around(100, [0, 2, 4]):
            policy.observe(doc)
        near = policy.utility_of(bytes([65]) * 102)
        far = policy.utility_of(bytes([65]) * 300)
        assert near < far

    def test_utility_of_empty_store(self):
        assert self._policy().utility_of(b"x") is None

    def test_periodic_random_eviction_never_evicts_best(self):
        config = BaseFileConfig(
            sample_probability=1.0,
            capacity=3,
            eviction=EvictionVariant.PERIODIC_RANDOM,
            random_evict_period=1,  # every eviction is random
        )
        policy = RandomizedPolicy(config, toy_delta, random.Random(7))
        for doc in docs_around(100, [0, 1, 2, 3, 4, 5, 6]):
            policy.observe(doc)
            current = policy.current()
            assert current in policy.stored_documents

    def test_two_set_variant(self):
        policy = self._policy(p=1.0, k=3, eviction=EvictionVariant.TWO_SET)
        for doc in docs_around(100, [0, 1, 2, 3, 4, 50]):
            policy.observe(doc)
        assert len(policy.stored_documents) == 3
        assert policy.current() is not None
        # the reference set is bounded too
        assert len(policy._references) == 3

    def test_two_set_quality(self):
        policy = self._policy(p=1.0, k=4, eviction=EvictionVariant.TWO_SET)
        for doc in docs_around(100, [0, 1, 2, 3, 60, 61]):
            policy.observe(doc)
        # best should come from the dense cluster, not the 160s
        assert len(policy.current()) <= 104


class TestOnlineOptimal:
    def test_tracks_running_medoid(self):
        policy = OnlineOptimalPolicy(toy_delta)
        for doc in docs_around(100, [0, 10, 20]):
            policy.observe(doc)
        # doc at 110 minimizes sum (10 + 10 = 20)
        assert len(policy.current()) == 110

    def test_max_documents_cap(self):
        policy = OnlineOptimalPolicy(toy_delta, max_documents=2)
        for doc in docs_around(100, [0, 1, 2, 3]):
            policy.observe(doc)
        assert len(policy._docs) == 2

    def test_owner_of_best(self):
        policy = OnlineOptimalPolicy(toy_delta)
        policy.observe(bytes([65]) * 100, "a")
        policy.observe(bytes([65]) * 110, "b")
        policy.observe(bytes([65]) * 120, "c")
        assert policy.current_owner() == "b"

    def test_flush(self):
        policy = OnlineOptimalPolicy(toy_delta)
        policy.observe(b"doc")
        policy.flush()
        assert policy.current() is None


class TestOfflineBest:
    def test_finds_medoid(self):
        docs = docs_around(100, [0, 10, 20, 100])
        index, best = offline_best(docs, toy_delta)
        assert index == 1  # 110 minimizes total distance
        assert best == docs[1]

    def test_single_document(self):
        assert offline_best([b"only"], toy_delta) == (0, b"only")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            offline_best([], toy_delta)

    def test_never_worse_than_any_online_policy(self):
        rng = random.Random(3)
        docs = [bytes([65]) * rng.randint(50, 150) for _ in range(12)]

        def total(base):
            return sum(toy_delta(base, d) for d in docs if d != base)

        _, best = offline_best(docs, toy_delta)
        policy = OnlineOptimalPolicy(toy_delta)
        for doc in docs:
            policy.observe(doc)
        assert total(best) <= total(policy.current())


class TestFactory:
    def test_known_policies(self):
        config = BaseFileConfig()
        rng = random.Random(0)
        for name in ("first-response", "randomized", "online-optimal"):
            policy = make_policy(name, config, toy_delta, rng)
            assert policy.name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nonsense", BaseFileConfig(), toy_delta, random.Random(0))
