"""Tests for the simulated origin server."""

import pytest

from repro.http.messages import Request
from repro.origin.private import find_card_numbers, shared_card_number
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite


@pytest.fixture()
def origin():
    site = SyntheticSite(SiteSpec(name="www.o.example", products_per_category=4))
    return OriginServer([site])


def _url(origin, index=0):
    site = origin.sites[0]
    return site.url_for(site.all_pages()[index])


class TestRouting:
    def test_serves_known_url(self, origin):
        response = origin.handle(Request(url=_url(origin)), now=0.0)
        assert response.status == 200
        assert len(response.body) > 1000

    def test_404_for_unknown_site(self, origin):
        response = origin.handle(Request(url="www.unknown.example/x?id=0"), now=0.0)
        assert response.status == 404
        assert origin.stats.errors == 1

    def test_404_for_bad_url(self, origin):
        response = origin.handle(Request(url="www.o.example/bogus?id=0"), now=0.0)
        assert response.status == 404

    def test_duplicate_site_rejected(self, origin):
        with pytest.raises(ValueError):
            origin.add_site(SyntheticSite(SiteSpec(name="www.o.example")))

    def test_stats_accumulate(self, origin):
        origin.handle(Request(url=_url(origin)), now=0.0)
        origin.handle(Request(url=_url(origin)), now=0.0)
        assert origin.stats.requests == 2
        assert origin.stats.bytes_rendered > 0


class TestPersonalization:
    def test_logged_in_render_differs_from_anonymous(self, origin):
        url = _url(origin)
        anon = origin.handle(Request(url=url), now=0.0)
        logged = origin.handle(Request(url=url, cookies={"uid": "u1"}), now=0.0)
        assert anon.body != logged.body

    def test_profiles_are_stable(self, origin):
        a = origin.profile_for("u9")
        b = origin.profile_for("u9")
        assert a is b

    def test_shared_card_group(self, origin):
        origin.register_shared_card("emp1", "acme")
        origin.register_shared_card("emp2", "acme")
        site = origin.sites[0]
        page = next(p for p in site.all_pages() if site.page_has_private_box(p))
        url = site.url_for(page)
        body1 = origin.handle(Request(url=url, cookies={"uid": "emp1"}), now=0.0).body
        body2 = origin.handle(Request(url=url, cookies={"uid": "emp2"}), now=0.0).body
        shared = shared_card_number("acme").encode()
        assert shared in find_card_numbers(body1)
        assert shared in find_card_numbers(body2)

    def test_distinct_users_distinct_cards(self, origin):
        site = origin.sites[0]
        page = next(p for p in site.all_pages() if site.page_has_private_box(p))
        url = site.url_for(page)
        body1 = origin.handle(Request(url=url, cookies={"uid": "ua"}), now=0.0).body
        body2 = origin.handle(Request(url=url, cookies={"uid": "ub"}), now=0.0).body
        assert find_card_numbers(body1) != find_card_numbers(body2)
