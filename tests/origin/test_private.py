"""Tests for the private-information model."""

from repro.origin.private import (
    card_number_for,
    find_card_numbers,
    profile_for,
    shared_card_number,
)


class TestCardNumbers:
    def test_deterministic_per_user(self):
        assert card_number_for("u1") == card_number_for("u1")

    def test_distinct_users_distinct_cards(self):
        assert card_number_for("u1") != card_number_for("u2")

    def test_format(self):
        card = card_number_for("u1")
        groups = card.split("-")
        assert len(groups) == 4
        assert all(len(g) == 4 and g.isdigit() for g in groups)

    def test_salt_changes_card(self):
        assert card_number_for("u1") != card_number_for("u1", salt="other")


class TestDetector:
    def test_finds_embedded_card(self):
        card = card_number_for("u1").encode()
        doc = b"<p>Card on file: " + card + b"</p>"
        assert find_card_numbers(doc) == {card}

    def test_finds_multiple(self):
        c1 = card_number_for("u1").encode()
        c2 = card_number_for("u2").encode()
        assert find_card_numbers(c1 + b" and " + c2) == {c1, c2}

    def test_ignores_other_digits(self):
        assert find_card_numbers(b"call 555-1234 or 12345678") == set()

    def test_word_boundary(self):
        card = card_number_for("u1").encode()
        # embedded in a longer digit run -> not a standalone card
        assert find_card_numbers(b"9" + card + b"9") == set()


class TestProfiles:
    def test_profile_without_group(self):
        profile = profile_for("u1")
        assert profile.shared_card is None
        assert profile.tokens() == [profile.card]

    def test_profile_with_group(self):
        profile = profile_for("emp", shared_group="acme")
        assert profile.shared_card == shared_card_number("acme")
        assert len(profile.tokens()) == 2

    def test_group_members_share_card(self):
        a = profile_for("emp1", shared_group="acme")
        b = profile_for("emp2", shared_group="acme")
        assert a.shared_card == b.shared_card
        assert a.card != b.card
