"""Tests for synthetic sites: determinism, URL handling, redundancy shape."""

import pytest

from repro.delta import delta_size
from repro.origin.private import profile_for
from repro.origin.site import PageKey, SiteSpec, SyntheticSite, UrlStyle

SPEC = SiteSpec(name="www.test.example", products_per_category=5)


@pytest.fixture(scope="module")
def site():
    return SyntheticSite(SPEC)


class TestUrls:
    @pytest.mark.parametrize("style", list(UrlStyle))
    def test_url_roundtrip_all_styles(self, style):
        site = SyntheticSite(SiteSpec(name="www.s.example", url_style=style))
        for page in site.all_pages()[:5]:
            assert site.parse_url(site.url_for(page)) == page

    def test_foreign_server_rejected(self, site):
        with pytest.raises(ValueError):
            site.parse_url("www.other.example/laptops?id=0")

    def test_unknown_category_rejected(self, site):
        with pytest.raises(ValueError):
            site.parse_url("www.test.example/nonsense?id=0")

    def test_out_of_range_product_rejected(self, site):
        with pytest.raises(ValueError):
            site.parse_url("www.test.example/laptops?id=99999")

    def test_hint_rule_extracts_category(self, site):
        from repro.url.rules import HintRule
        from repro.url.parts import split_server

        rule = HintRule(site.hint_rule_pattern())
        url = site.url_for(PageKey("laptops", 3))
        server, remainder = split_server(url)
        parts = rule.apply(server, remainder)
        assert parts is not None
        assert parts.hint == "laptops"

    def test_all_pages_count(self, site):
        assert len(site.all_pages()) == len(SPEC.categories) * 5


class TestRenderDeterminism:
    def test_same_inputs_same_bytes(self, site):
        page = PageKey("laptops", 0)
        a = site.render(page, 100.0, user_id="u1", profile=profile_for("u1"))
        b = site.render(page, 100.0, user_id="u1", profile=profile_for("u1"))
        assert a == b

    def test_same_epoch_same_bytes(self, site):
        page = PageKey("laptops", 0)
        a = site.render(page, 0.0)
        b = site.render(page, SPEC.epoch_seconds - 1)
        assert a == b

    def test_different_epoch_differs(self, site):
        page = PageKey("laptops", 0)
        assert site.render(page, 0.0) != site.render(page, SPEC.epoch_seconds * 3)

    def test_fresh_site_instance_renders_identically(self):
        a = SyntheticSite(SPEC).render(PageKey("laptops", 1), 50.0)
        b = SyntheticSite(SPEC).render(PageKey("laptops", 1), 50.0)
        assert a == b


class TestRedundancyShape:
    """The generator must produce the correlation structure the paper's
    scheme exploits: temporal << same-class spatial << cross-class."""

    def test_document_size_in_paper_band(self, site):
        page = PageKey("laptops", 0)
        doc = site.render(page, 0.0, user_id="u1", profile=profile_for("u1"))
        # Paper: documents that benefit are ~30-50 KB.
        assert 20_000 < len(doc) < 60_000

    def test_temporal_delta_smallest(self, site):
        page = PageKey("laptops", 0)
        t0 = site.render(page, 0.0)
        t1 = site.render(page, SPEC.epoch_seconds * 2)
        other = site.render(PageKey("laptops", 1), 0.0)
        cross = site.render(PageKey("desktops", 0), 0.0)
        temporal = delta_size(t0, t1)
        spatial = delta_size(t0, other)
        cross_cat = delta_size(t0, cross)
        assert temporal < spatial < cross_cat

    def test_personalized_variants_are_close(self, site):
        page = PageKey("laptops", 0)
        a = site.render(page, 0.0, user_id="u1", profile=profile_for("u1"))
        b = site.render(page, 0.0, user_id="u2", profile=profile_for("u2"))
        # Different users' renders of one page differ by a few percent only.
        assert delta_size(a, b) < 0.1 * len(a)

    def test_personalization_changes_content(self, site):
        page = PageKey("laptops", 0)
        anon = site.render(page, 0.0)
        personalized = site.render(
            page, 0.0, user_id="u1", profile=profile_for("u1")
        )
        assert anon != personalized


class TestPrivateContent:
    def test_private_box_pages_contain_card(self, site):
        from repro.origin.private import find_card_numbers

        profile = profile_for("u-cards")
        pages_with_box = [p for p in site.all_pages() if site.page_has_private_box(p)]
        assert pages_with_box, "spec should give some pages a private box"
        doc = site.render(
            pages_with_box[0], 0.0, user_id="u-cards", profile=profile
        )
        cards = find_card_numbers(doc)
        assert profile.card.encode() in cards

    def test_anonymous_render_has_no_card(self, site):
        from repro.origin.private import find_card_numbers

        for page in site.all_pages()[:5]:
            assert not find_card_numbers(site.render(page, 0.0))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SiteSpec(name="www.x.example", categories=())
        with pytest.raises(ValueError):
            SiteSpec(name="www.x.example", products_per_category=0)


class TestDetailRevisions:
    def test_default_never_revises(self):
        spec = SiteSpec(name="www.rev.example", products_per_category=2)
        site = SyntheticSite(spec)
        page = PageKey("laptops", 0)
        early = site.render(page, 0.0)
        # dynamic fragments will differ, but the detail block is stable:
        # rendering at identical epochs must be identical across any time
        late = site.render(page, spec.epoch_seconds * 10_000)
        assert early != late  # dynamic churned
        # same epoch -> identical regardless of absolute time
        assert site.render(page, 0.0) == site.render(page, 59.0)

    def test_revision_changes_detail(self):
        spec = SiteSpec(
            name="www.rev2.example",
            products_per_category=1,
            detail_revision_seconds=3600.0,
            epoch_seconds=1e9,  # freeze the dynamic fragments
            personalized=False,
        )
        site = SyntheticSite(spec)
        page = PageKey("laptops", 0)
        rev0 = site.render(page, 0.0)
        rev0_again = site.render(page, 3599.0)
        rev1 = site.render(page, 3601.0)
        assert rev0 == rev0_again  # stable within the revision
        assert rev0 != rev1  # catalog edit happened

    def test_revision_drift_grows_deltas(self):
        from repro.delta import delta_size

        spec = SiteSpec(
            name="www.rev3.example",
            products_per_category=1,
            detail_revision_seconds=3600.0,
            epoch_seconds=1e9,
            personalized=False,
        )
        site = SyntheticSite(spec)
        page = PageKey("laptops", 0)
        base = site.render(page, 0.0)
        same_rev = site.render(page, 1800.0)
        next_rev = site.render(page, 3700.0)
        assert delta_size(base, same_rev) < delta_size(base, next_rev)
