"""Error-path coverage for the delta wire format (satellite hardening).

Every way a delta payload can be wrong — truncated mid-structure,
pointing outside its base, or outright garbage — must surface as a typed
error from :mod:`repro.delta.errors`, never an ``IndexError`` or silent
corruption.  The live server ships these payloads to untrusted clients
and applies client-supplied refs, so the decode path must be total.
"""

import random

import pytest

from repro.delta import (
    BaseMismatchError,
    CorruptDeltaError,
    DeltaError,
    apply_delta,
    make_delta,
)
from repro.delta.codec import MAGIC, checksum, decode_delta, encode_delta
from repro.delta.errors import DeltaError as ErrorsDeltaError
from repro.delta.instructions import Add, Copy, Run
from repro.delta.apply import replay

BASE = (b"the quick brown fox jumps over the lazy dog. " * 40)[:1600]
TARGET = BASE[:700] + b"<<inserted block>>" + BASE[700:1500] + b"tail"


def valid_payload() -> bytes:
    payload = make_delta(BASE, TARGET)
    assert apply_delta(payload, BASE) == TARGET
    return payload


class TestTruncation:
    def test_every_strict_prefix_raises_corrupt(self):
        """No truncation point yields a silently-wrong document."""
        payload = valid_payload()
        for cut in range(len(payload)):
            with pytest.raises(CorruptDeltaError):
                decode_delta(payload[:cut])

    def test_truncated_apply_never_returns_bytes(self):
        payload = valid_payload()
        # Sampled (apply also replays): every 7th prefix keeps this fast.
        for cut in range(0, len(payload), 7):
            with pytest.raises(DeltaError):
                apply_delta(payload[:cut], BASE)


class TestCopyBounds:
    def test_decode_rejects_copy_beyond_declared_base(self):
        payload = encode_delta(
            [Copy(offset=len(BASE) - 4, length=16)], len(BASE), checksum(b"")
        )
        with pytest.raises(CorruptDeltaError, match="outside base"):
            decode_delta(payload)

    def test_decode_rejects_copy_offset_past_end(self):
        payload = encode_delta([Copy(offset=10_000, length=1)], len(BASE), 0)
        with pytest.raises(CorruptDeltaError):
            decode_delta(payload)

    def test_lying_base_length_caught_at_apply(self):
        """A payload whose header claims a bigger base passes decode but
        must fail apply before any out-of-range read."""
        payload = encode_delta(
            [Copy(offset=len(BASE), length=64)], len(BASE) + 64, 0
        )
        decode_delta(payload)  # structurally fine against its own header
        with pytest.raises(BaseMismatchError):
            apply_delta(payload, BASE)

    def test_replay_rejects_out_of_bounds_copy(self):
        with pytest.raises(CorruptDeltaError, match="outside base"):
            replay([Copy(offset=0, length=len(BASE) + 1)], BASE)


class TestGarbageInput:
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"\x00",
            b"not a delta at all",
            MAGIC,  # header only
            MAGIC + b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff",  # runaway varints
            MAGIC + b"\x00\x00" + b"\x00" * 4 + b"\x07",  # unknown opcode
        ],
    )
    def test_typed_error_only(self, payload):
        with pytest.raises(CorruptDeltaError):
            decode_delta(payload)

    def test_seeded_random_bytes_after_magic(self):
        """Fuzz the instruction stream: only DeltaError family may escape."""
        rng = random.Random(0xC0FFEE)
        for trial in range(200):
            junk = MAGIC + bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 60))
            )
            try:
                apply_delta(junk, BASE)
            except ErrorsDeltaError:
                pass  # CorruptDeltaError or BaseMismatchError: both fine
            # Anything else (IndexError, MemoryError, ...) fails the test.

    def test_zero_length_run_rejected(self):
        payload = bytearray(MAGIC)
        payload += b"\x00\x00"  # target length 0, base length 0
        payload += b"\x00" * 4  # checksum
        payload += b"\x02\x41\x00"  # RUN 'A' x 0
        with pytest.raises(CorruptDeltaError):
            decode_delta(bytes(payload))


class TestMismatchedBase:
    def test_wrong_base_length(self):
        payload = valid_payload()
        with pytest.raises(BaseMismatchError, match="byte base"):
            apply_delta(payload, BASE + b"x")

    def test_same_length_wrong_content_fails_checksum(self):
        payload = valid_payload()
        # Corrupt a wide swath so some COPY-sourced region is affected
        # no matter how the differ carved up the base.
        wrong = bytearray(len(BASE))
        with pytest.raises(BaseMismatchError, match="checksum"):
            apply_delta(payload, bytes(wrong))

    def test_tampered_payload_add_data(self):
        """Flip one byte inside an ADD region: checksum catches it."""
        payload = bytearray(valid_payload())
        # Find the inserted block's bytes in the payload and corrupt one.
        idx = bytes(payload).find(b"<<inserted")
        assert idx != -1
        payload[idx] ^= 0x01
        with pytest.raises(DeltaError):
            apply_delta(bytes(payload), BASE)

    def test_replay_of_valid_instructions_is_unchecked(self):
        """replay() is the unchecked inner loop; apply_delta owns checks."""
        assert replay([Add(b"ab"), Run(0x2E, 3), Copy(0, 4)], BASE) == (
            b"ab" + b"..." + BASE[:4]
        )
