"""Tests for the light delta estimator and its index cache."""

import pytest

from repro.delta import LightEstimator, delta_size


def docs():
    skeleton = b"<div class='layout'>" + b"<p>shared page chrome</p>" * 80
    a = skeleton + b"<main>alpha content body first version</main>" * 5
    b = skeleton + b"<main>alpha content body second version</main>" * 5
    c = b"completely unrelated document " * 60
    return a, b, c


class TestEstimates:
    def test_similar_documents_small_estimate(self):
        a, b, _ = docs()
        estimator = LightEstimator()
        assert estimator.estimate(a, b) < 0.3 * len(b)

    def test_unrelated_documents_large_estimate(self):
        a, _, c = docs()
        estimator = LightEstimator()
        assert estimator.estimate(a, c) > 0.8 * len(c)

    def test_estimate_orders_like_full_differ(self):
        a, b, c = docs()
        estimator = LightEstimator()
        assert estimator.estimate(a, b) < estimator.estimate(a, c)
        assert delta_size(a, b) < delta_size(a, c)

    def test_estimate_never_below_full(self):
        """The light differ finds fewer matches, so its estimate is an
        (approximate) upper bound on the real delta size."""
        a, b, _ = docs()
        estimator = LightEstimator()
        assert estimator.estimate(a, b) >= 0.6 * delta_size(a, b)

    def test_identical_documents_tiny(self):
        a, _, _ = docs()
        estimator = LightEstimator()
        assert estimator.estimate(a, a) < 64


class TestIndexCache:
    def test_same_base_reuses_index(self):
        a, b, _ = docs()
        estimator = LightEstimator()
        first = estimator.index(a)
        second = estimator.index(a)
        assert first is second

    def test_distinct_bases_distinct_indexes(self):
        a, _, c = docs()
        estimator = LightEstimator()
        assert estimator.index(a) is not estimator.index(c)

    def test_cache_eviction(self):
        estimator = LightEstimator(index_cache_size=2)
        bases = [f"base number {i} ".encode() * 30 for i in range(4)]
        indexes = [estimator.index(b) for b in bases]
        # the first base was evicted: a fresh index is built
        assert estimator.index(bases[0]) is not indexes[0]
        # the most recent is still cached
        assert estimator.index(bases[3]) is indexes[3]

    def test_cached_estimates_identical(self):
        a, b, _ = docs()
        estimator = LightEstimator()
        assert estimator.estimate(a, b) == estimator.estimate(a, b)
