"""Tests for delta compression (the paper's gzip step)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.compress import compress, compressed_size, decompress


class TestCompress:
    def test_roundtrip(self):
        data = b"compressible text " * 200
        assert decompress(compress(data)) == data

    def test_compresses_redundant_content(self):
        data = b"the same sentence again and again " * 100
        assert len(compress(data)) < 0.1 * len(data)

    def test_factor_of_two_on_html_like_deltas(self):
        """The paper attributes 'a factor of 2 on average' to compression;
        prose-like delta content should compress at least that well."""
        from repro.origin.text import paragraph, rng_for

        delta_like = paragraph(rng_for("gzip-test"), 4000).encode()
        assert len(compress(delta_like)) <= 0.55 * len(delta_like)

    def test_compressed_size_matches(self):
        data = b"abc" * 500
        assert compressed_size(data) == len(compress(data))

    def test_levels_tradeoff(self):
        data = (b"some mixed content 123 " * 300) + bytes(range(256)) * 4
        fast = compress(data, level=1)
        best = compress(data, level=9)
        assert len(best) <= len(fast)
        assert decompress(fast) == decompress(best) == data

    def test_empty(self):
        assert decompress(compress(b"")) == b""


@settings(max_examples=80, deadline=None)
@given(data=st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert decompress(compress(data)) == data
