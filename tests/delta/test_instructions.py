"""Unit tests for the delta instruction model."""

import pytest

from repro.delta.instructions import (
    Add,
    Copy,
    added_bytes,
    base_coverage,
    coalesce,
    copied_bytes,
    target_length,
    validate,
)


class TestInstructionValidation:
    def test_copy_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            Copy(offset=-1, length=5)

    def test_copy_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Copy(offset=0, length=0)

    def test_add_rejects_empty_data(self):
        with pytest.raises(ValueError):
            Add(b"")

    def test_copy_is_frozen(self):
        copy = Copy(0, 4)
        with pytest.raises(AttributeError):
            copy.offset = 3

    def test_validate_accepts_in_bounds_copy(self):
        validate([Copy(0, 10), Add(b"x")], base_length=10)

    def test_validate_rejects_out_of_bounds_copy(self):
        with pytest.raises(ValueError):
            validate([Copy(5, 10)], base_length=10)


class TestLengthAccounting:
    def test_target_length_sums_copies_and_adds(self):
        instrs = [Copy(0, 7), Add(b"abc"), Copy(10, 2)]
        assert target_length(instrs) == 12

    def test_copied_and_added_bytes(self):
        instrs = [Copy(0, 7), Add(b"abc"), Copy(10, 2)]
        assert copied_bytes(instrs) == 9
        assert added_bytes(instrs) == 3

    def test_empty_stream(self):
        assert target_length([]) == 0
        assert copied_bytes([]) == 0
        assert added_bytes([]) == 0


class TestBaseCoverage:
    def test_merges_overlapping_ranges(self):
        instrs = [Copy(0, 10), Copy(5, 10), Add(b"x")]
        assert base_coverage(instrs, base_length=20) == [(0, 15)]

    def test_merges_adjacent_ranges(self):
        instrs = [Copy(0, 5), Copy(5, 5)]
        assert base_coverage(instrs, base_length=10) == [(0, 10)]

    def test_keeps_disjoint_ranges(self):
        instrs = [Copy(0, 3), Copy(10, 3)]
        assert base_coverage(instrs, base_length=20) == [(0, 3), (10, 13)]

    def test_sorts_out_of_order_copies(self):
        instrs = [Copy(10, 3), Copy(0, 3)]
        assert base_coverage(instrs, base_length=20) == [(0, 3), (10, 13)]

    def test_rejects_copy_past_base(self):
        with pytest.raises(ValueError):
            base_coverage([Copy(18, 5)], base_length=20)

    def test_adds_do_not_cover(self):
        assert base_coverage([Add(b"hello")], base_length=20) == []


class TestCoalesce:
    def test_merges_adjacent_adds(self):
        out = list(coalesce([Add(b"ab"), Add(b"cd")]))
        assert out == [Add(b"abcd")]

    def test_merges_contiguous_copies(self):
        out = list(coalesce([Copy(0, 5), Copy(5, 3)]))
        assert out == [Copy(0, 8)]

    def test_keeps_non_contiguous_copies(self):
        out = list(coalesce([Copy(0, 5), Copy(6, 3)]))
        assert out == [Copy(0, 5), Copy(6, 3)]

    def test_mixed_stream(self):
        out = list(coalesce([Add(b"a"), Add(b"b"), Copy(0, 2), Copy(2, 2), Add(b"c")]))
        assert out == [Add(b"ab"), Copy(0, 4), Add(b"c")]

    def test_empty(self):
        assert list(coalesce([])) == []

    def test_preserves_target(self):
        base = b"0123456789"
        instrs = [Copy(0, 3), Copy(3, 3), Add(b"x"), Add(b"y"), Copy(9, 1)]
        from repro.delta.apply import replay

        assert replay(list(coalesce(instrs)), base) == replay(instrs, base)
