"""Tests for the binary delta wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.apply import apply_delta
from repro.delta.codec import (
    DEFAULT_MAX_TARGET_LENGTH,
    MAGIC,
    VARINT_MAX,
    checksum,
    decode_delta,
    encode_delta,
    encoded_size,
    read_varint,
    varint_size,
    write_varint,
)
from repro.delta.errors import CorruptDeltaError
from repro.delta.instructions import Add, Copy, Run
from repro.delta.vdelta import VdeltaEncoder


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**21, 2**35])
    def test_roundtrip(self, value):
        buf = bytearray()
        write_varint(value, buf)
        decoded, pos = read_varint(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            write_varint(-1, bytearray())

    def test_truncated_raises(self):
        buf = bytearray()
        write_varint(300, buf)
        with pytest.raises(CorruptDeltaError):
            read_varint(bytes(buf[:-1]), 0)

    def test_varint_size_matches_encoding(self):
        for value in (0, 127, 128, 16383, 16384, 2**28):
            buf = bytearray()
            write_varint(value, buf)
            assert varint_size(value) == len(buf)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=100)
    def test_roundtrip_property(self, value):
        buf = bytearray()
        write_varint(value, buf)
        assert read_varint(bytes(buf), 0) == (value, len(buf))


class TestVarintBounds:
    """Regressions for the unbounded/non-canonical varint bugs."""

    def test_max_value_roundtrips(self):
        buf = bytearray()
        write_varint(VARINT_MAX, buf)
        assert read_varint(bytes(buf), 0) == (VARINT_MAX, len(buf))
        assert varint_size(VARINT_MAX) == len(buf) == 9

    def test_write_rejects_over_63_bits(self):
        with pytest.raises(ValueError):
            write_varint(VARINT_MAX + 1, bytearray())
        with pytest.raises(ValueError):
            varint_size(VARINT_MAX + 1)

    def test_read_rejects_ten_byte_encoding(self):
        # 2**63 encoded LEB128-style: ten bytes, previously decoded to a
        # silent Python bigint.
        data = bytes([0x80] * 9 + [0x01])
        with pytest.raises(CorruptDeltaError):
            read_varint(data, 0)

    def test_nine_bytes_saturate_at_varint_max(self):
        # Nine payload bytes carry exactly 63 bits: the largest 9-byte
        # varint IS the range maximum, so overflow requires a 10th byte
        # (rejected above) and no decodable value ever exceeds VARINT_MAX.
        data = bytes([0xFF] * 8 + [0x7F])
        assert read_varint(data, 0) == (VARINT_MAX, 9)

    @pytest.mark.parametrize(
        "data",
        [
            bytes([0x80, 0x00]),  # 0 padded to two bytes
            bytes([0xFF, 0x00]),  # 127 padded to two bytes
            bytes([0x80, 0x80, 0x00]),  # 0 padded to three bytes
        ],
    )
    def test_read_rejects_non_canonical(self, data):
        with pytest.raises(CorruptDeltaError):
            read_varint(data, 0)

    def test_zero_single_byte_still_valid(self):
        assert read_varint(b"\x00rest", 0) == (0, 1)

    @given(st.binary(min_size=1, max_size=12))
    @settings(max_examples=200)
    def test_any_decodable_varint_reencodes_identically(self, data):
        """Whatever read_varint accepts, write_varint reproduces exactly —
        so varint_size always agrees with the wire."""
        try:
            value, pos = read_varint(data, 0)
        except CorruptDeltaError:
            return
        buf = bytearray()
        write_varint(value, buf)
        assert bytes(buf) == data[:pos]
        assert varint_size(value) == pos


class TestDecodeBounds:
    """Regressions for the memory-DoS hole: huge RUN/tlen payloads."""

    def _payload(self, instructions, tlen, blen=0, check=0):
        out = bytearray(MAGIC)
        write_varint(tlen, out)
        write_varint(blen, out)
        out += check.to_bytes(4, "big")
        for instr in instructions:
            if isinstance(instr, Run):
                out += bytes([0x02, instr.byte])
                write_varint(instr.length, out)
            elif isinstance(instr, Add):
                out.append(0x00)
                write_varint(len(instr.data), out)
                out += instr.data
            else:
                out.append(0x01)
                write_varint(instr.offset, out)
                write_varint(instr.length, out)
        return bytes(out)

    def test_huge_run_with_matching_header_rejected(self):
        # A ~10-byte payload that previously decoded fine and then made
        # replay allocate gigabytes.
        huge = 8 << 30
        payload = self._payload([Run(0x41, huge)], tlen=huge)
        with pytest.raises(CorruptDeltaError):
            decode_delta(payload)

    def test_huge_run_rejected_before_replay_allocates(self):
        huge = 8 << 30
        payload = self._payload([Run(0x41, huge)], tlen=huge)
        with pytest.raises(CorruptDeltaError):
            apply_delta(payload, b"")

    def test_run_overrunning_header_rejected_early(self):
        # tlen is small (passes the header bound) but a RUN inside claims
        # far more; the in-stream bound must trip before more instructions
        # are parsed.
        payload = self._payload([Run(0x41, 4 << 30), Run(0x42, 1)], tlen=100)
        with pytest.raises(CorruptDeltaError):
            decode_delta(payload)

    def test_explicit_bound_enforced(self):
        target = b"x" * 2048
        wire = bytes(
            VdeltaEncoder().encode_wire_with_index(
                VdeltaEncoder().index(b""), target
            )
        )
        decode_delta(wire)  # default bound: fine
        with pytest.raises(CorruptDeltaError):
            decode_delta(wire, max_target_length=1024)
        with pytest.raises(CorruptDeltaError):
            apply_delta(wire, b"", max_target_length=1024)

    def test_bound_disabled_for_trusted_payloads(self):
        target = b"y" * 4096
        wire = bytes(
            VdeltaEncoder().encode_wire_with_index(
                VdeltaEncoder().index(b""), target
            )
        )
        assert decode_delta(wire, max_target_length=None)[1] == len(target)
        assert apply_delta(wire, b"", max_target_length=None) == target

    def test_default_bound_is_the_engine_document_bound(self):
        from repro.core.config import DeltaServerConfig

        assert DeltaServerConfig().max_document_bytes == DEFAULT_MAX_TARGET_LENGTH


class TestDeltaCodec:
    def _encode(self, base, target):
        result = VdeltaEncoder().encode(base, target)
        return result.instructions, encode_delta(
            result.instructions, len(base), checksum(target)
        )

    def test_roundtrip(self):
        base = b"base content here " * 20
        target = base.replace(b"content", b"CONTENT", 2) + b"tail"
        instructions, payload = self._encode(base, target)
        decoded, tlen, blen, check = decode_delta(payload)
        assert decoded == instructions
        assert tlen == len(target)
        assert blen == len(base)
        assert check == checksum(target)

    def test_magic_checked(self):
        _, payload = self._encode(b"aaaa" * 10, b"aaaa" * 10)
        bad = b"XXXX" + payload[4:]
        with pytest.raises(CorruptDeltaError):
            decode_delta(bad)

    def test_truncated_payload(self):
        _, payload = self._encode(b"abcdefgh" * 10, b"abcdefgh" * 10 + b"tail")
        with pytest.raises(CorruptDeltaError):
            decode_delta(payload[:-3])

    def test_unknown_opcode(self):
        payload = bytearray(self._encode(b"base" * 10, b"base" * 10)[1])
        # header: magic + tlen varint + blen varint + 4 checksum bytes; the
        # first instruction byte follows.  Corrupt it.
        header_len = len(MAGIC)
        _, pos = read_varint(bytes(payload), header_len)
        _, pos = read_varint(bytes(payload), pos)
        pos += 4
        payload[pos] = 0x7F
        with pytest.raises(CorruptDeltaError):
            decode_delta(bytes(payload))

    def test_copy_outside_base_rejected(self):
        payload = encode_delta([Copy(0, 10)], base_length=10, target_checksum=0)
        # lie about the base length
        bad = encode_delta([Copy(5, 10)], base_length=10, target_checksum=0)
        decode_delta(payload)
        with pytest.raises(CorruptDeltaError):
            decode_delta(bad)

    def test_length_mismatch_rejected(self):
        # Hand-craft: header says 5 bytes but instructions produce 3.
        out = bytearray(MAGIC)
        write_varint(5, out)
        write_varint(0, out)
        out += (0).to_bytes(4, "big")
        out += bytes([0x00])
        write_varint(3, out)
        out += b"abc"
        with pytest.raises(CorruptDeltaError):
            decode_delta(bytes(out))

    def test_encoded_size_matches_actual(self):
        base = b"0123456789abcdef" * 64
        for target in (
            base,
            base[:300] + b"mutation" + base[500:],
            b"completely different " * 30,
        ):
            result = VdeltaEncoder().encode(base, target)
            actual = len(
                encode_delta(result.instructions, len(base), checksum(target))
            )
            assert encoded_size(result.instructions, len(base)) == actual

    def test_empty_instruction_stream(self):
        payload = encode_delta([], base_length=0, target_checksum=checksum(b""))
        decoded, tlen, blen, _ = decode_delta(payload)
        assert decoded == []
        assert tlen == 0
        assert blen == 0
