"""Tests for the binary delta wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.codec import (
    MAGIC,
    checksum,
    decode_delta,
    encode_delta,
    encoded_size,
    read_varint,
    varint_size,
    write_varint,
)
from repro.delta.errors import CorruptDeltaError
from repro.delta.instructions import Add, Copy
from repro.delta.vdelta import VdeltaEncoder


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**21, 2**35])
    def test_roundtrip(self, value):
        buf = bytearray()
        write_varint(value, buf)
        decoded, pos = read_varint(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            write_varint(-1, bytearray())

    def test_truncated_raises(self):
        buf = bytearray()
        write_varint(300, buf)
        with pytest.raises(CorruptDeltaError):
            read_varint(bytes(buf[:-1]), 0)

    def test_varint_size_matches_encoding(self):
        for value in (0, 127, 128, 16383, 16384, 2**28):
            buf = bytearray()
            write_varint(value, buf)
            assert varint_size(value) == len(buf)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=100)
    def test_roundtrip_property(self, value):
        buf = bytearray()
        write_varint(value, buf)
        assert read_varint(bytes(buf), 0) == (value, len(buf))


class TestDeltaCodec:
    def _encode(self, base, target):
        result = VdeltaEncoder().encode(base, target)
        return result.instructions, encode_delta(
            result.instructions, len(base), checksum(target)
        )

    def test_roundtrip(self):
        base = b"base content here " * 20
        target = base.replace(b"content", b"CONTENT", 2) + b"tail"
        instructions, payload = self._encode(base, target)
        decoded, tlen, blen, check = decode_delta(payload)
        assert decoded == instructions
        assert tlen == len(target)
        assert blen == len(base)
        assert check == checksum(target)

    def test_magic_checked(self):
        _, payload = self._encode(b"aaaa" * 10, b"aaaa" * 10)
        bad = b"XXXX" + payload[4:]
        with pytest.raises(CorruptDeltaError):
            decode_delta(bad)

    def test_truncated_payload(self):
        _, payload = self._encode(b"abcdefgh" * 10, b"abcdefgh" * 10 + b"tail")
        with pytest.raises(CorruptDeltaError):
            decode_delta(payload[:-3])

    def test_unknown_opcode(self):
        payload = bytearray(self._encode(b"base" * 10, b"base" * 10)[1])
        # header: magic + tlen varint + blen varint + 4 checksum bytes; the
        # first instruction byte follows.  Corrupt it.
        header_len = len(MAGIC)
        _, pos = read_varint(bytes(payload), header_len)
        _, pos = read_varint(bytes(payload), pos)
        pos += 4
        payload[pos] = 0x7F
        with pytest.raises(CorruptDeltaError):
            decode_delta(bytes(payload))

    def test_copy_outside_base_rejected(self):
        payload = encode_delta([Copy(0, 10)], base_length=10, target_checksum=0)
        # lie about the base length
        bad = encode_delta([Copy(5, 10)], base_length=10, target_checksum=0)
        decode_delta(payload)
        with pytest.raises(CorruptDeltaError):
            decode_delta(bad)

    def test_length_mismatch_rejected(self):
        # Hand-craft: header says 5 bytes but instructions produce 3.
        out = bytearray(MAGIC)
        write_varint(5, out)
        write_varint(0, out)
        out += (0).to_bytes(4, "big")
        out += bytes([0x00])
        write_varint(3, out)
        out += b"abc"
        with pytest.raises(CorruptDeltaError):
            decode_delta(bytes(out))

    def test_encoded_size_matches_actual(self):
        base = b"0123456789abcdef" * 64
        for target in (
            base,
            base[:300] + b"mutation" + base[500:],
            b"completely different " * 30,
        ):
            result = VdeltaEncoder().encode(base, target)
            actual = len(
                encode_delta(result.instructions, len(base), checksum(target))
            )
            assert encoded_size(result.instructions, len(base)) == actual

    def test_empty_instruction_stream(self):
        payload = encode_delta([], base_length=0, target_checksum=checksum(b""))
        decoded, tlen, blen, _ = decode_delta(payload)
        assert decoded == []
        assert tlen == 0
        assert blen == 0
