"""Hypothesis fuzz suite for the delta codec and decoder.

The decode path is the trust boundary of the whole scheme: payloads arrive
over the wire at clients and proxies.  Whatever bytes show up, the codec
must either decode them or raise a :class:`~repro.delta.errors.DeltaError`
subclass — never ``IndexError``, ``OverflowError``, ``MemoryError``, or a
multi-gigabyte allocation.  These properties fuzz:

* round-trips: encode → decode is the identity on instruction streams, and
  wire-encoding a document against a base always reconstructs it exactly;
* ``encoded_size`` equals ``len(encode_delta(...))`` for every stream;
* truncation at *every* prefix length of a valid payload raises cleanly;
* random byte mutations of valid payloads only ever raise ``DeltaError``
  subclasses (or decode to something whose checksum then fails);
* arbitrary garbage never escapes the ``DeltaError`` hierarchy and never
  reconstructs more than ``max_target_length`` bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.apply import apply_delta
from repro.delta.codec import (
    MAGIC,
    checksum,
    decode_delta,
    encode_delta,
    encoded_size,
)
from repro.delta.errors import DeltaError
from repro.delta.instructions import Add, Copy, Run, target_length
from repro.delta.vdelta import VdeltaEncoder

BASE_LENGTH = 64

# Instruction streams over a fixed notional base length, so COPY bounds
# are sometimes valid and sometimes not worth generating at all.
_instruction = st.one_of(
    st.builds(
        Add, st.binary(min_size=1, max_size=48)
    ),
    st.builds(
        Copy,
        offset=st.integers(min_value=0, max_value=BASE_LENGTH - 1),
        length=st.integers(min_value=1, max_value=BASE_LENGTH),
    ).filter(lambda c: c.offset + c.length <= BASE_LENGTH),
    st.builds(
        Run,
        byte=st.integers(min_value=0, max_value=255),
        length=st.integers(min_value=1, max_value=512),
    ),
)

_streams = st.lists(_instruction, min_size=0, max_size=12)

_doc_pairs = st.tuples(
    st.binary(min_size=0, max_size=600),
    st.binary(min_size=0, max_size=600),
)


class TestRoundTrip:
    @given(_streams)
    @settings(max_examples=150)
    def test_encode_decode_identity(self, instructions):
        payload = encode_delta(instructions, BASE_LENGTH, target_checksum=7)
        decoded, tlen, blen, check = decode_delta(payload)
        assert decoded == instructions
        assert tlen == target_length(instructions)
        assert blen == BASE_LENGTH
        assert check == 7

    @given(_streams)
    @settings(max_examples=150)
    def test_encoded_size_equals_actual_wire_size(self, instructions):
        payload = encode_delta(instructions, BASE_LENGTH, target_checksum=7)
        assert encoded_size(instructions, BASE_LENGTH) == len(payload)

    @given(_doc_pairs)
    @settings(max_examples=100)
    def test_wire_kernel_reconstructs_exactly(self, pair):
        base, target = pair
        encoder = VdeltaEncoder()
        wire = bytes(encoder.encode_wire_with_index(encoder.index(base), target))
        assert apply_delta(wire, base) == target

    @given(_doc_pairs)
    @settings(max_examples=100)
    def test_wire_kernel_matches_instruction_serialization(self, pair):
        """The streaming kernel and the instruction-object path must agree
        on the bytes (the instruction path is decode-backed, so this also
        pins encode_delta round-stability)."""
        base, target = pair
        encoder = VdeltaEncoder()
        index = encoder.index(base)
        wire = bytes(encoder.encode_wire_with_index(index, target))
        result = encoder.encode_with_index(index, target)
        assert (
            encode_delta(result.instructions, len(base), checksum(target)) == wire
        )


def _valid_payload(base: bytes, target: bytes) -> bytes:
    encoder = VdeltaEncoder()
    return bytes(encoder.encode_wire_with_index(encoder.index(base), target))


class TestHostileInputs:
    @given(_doc_pairs, st.data())
    @settings(max_examples=150)
    def test_truncation_always_raises_delta_error(self, pair, data):
        base, target = pair
        payload = _valid_payload(base, target)
        cut = data.draw(st.integers(min_value=0, max_value=max(len(payload) - 1, 0)))
        try:
            apply_delta(payload[:cut], base)
        except DeltaError:
            pass
        else:  # pragma: no cover - would be a real bug
            pytest.fail(f"truncation at {cut}/{len(payload)} decoded cleanly")

    @given(_doc_pairs, st.data())
    @settings(max_examples=150)
    def test_byte_mutation_never_escapes_delta_error(self, pair, data):
        base, target = pair
        payload = bytearray(_valid_payload(base, target))
        position = data.draw(
            st.integers(min_value=0, max_value=len(payload) - 1)
        )
        payload[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            reconstructed = apply_delta(bytes(payload), base)
        except DeltaError:
            return
        # A mutation may survive decoding (e.g. flipping a literal byte
        # that the checksum was computed over would fail, but flipping a
        # checksum byte AND the matching literal cannot happen in a single
        # mutation) — if it decodes, it must have produced *something*
        # bounded, never a crash.
        assert isinstance(reconstructed, bytes)

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=300)
    def test_garbage_never_escapes_delta_error(self, blob):
        try:
            apply_delta(blob, b"some base bytes")
        except DeltaError:
            pass

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=300)
    def test_magic_prefixed_garbage_never_escapes_delta_error(self, blob):
        bound = 1 << 16
        try:
            document = apply_delta(MAGIC + blob, b"base", max_target_length=bound)
        except DeltaError:
            return
        # Bounded allocation: anything that decodes stayed under the cap.
        assert len(document) <= bound
