"""Tests for delta application and its failure modes."""

import pytest

from repro.delta import (
    BaseMismatchError,
    CorruptDeltaError,
    apply_delta,
    make_delta,
    replay,
)
from repro.delta.instructions import Add, Copy


class TestReplay:
    def test_copy_and_add(self):
        base = b"0123456789"
        out = replay([Copy(0, 4), Add(b"XY"), Copy(8, 2)], base)
        assert out == b"0123XY89"

    def test_copy_out_of_bounds_raises(self):
        with pytest.raises(CorruptDeltaError):
            replay([Copy(5, 10)], b"short")

    def test_empty_stream(self):
        assert replay([], b"anything") == b""


class TestApplyDelta:
    def test_roundtrip(self):
        base = b"the quick brown fox " * 30
        target = base.replace(b"quick", b"slow", 2)
        assert apply_delta(make_delta(base, target), base) == target

    def test_wrong_base_length_detected(self):
        base = b"a" * 300
        target = b"a" * 200 + b"b" * 100
        payload = make_delta(base, target)
        with pytest.raises(BaseMismatchError):
            apply_delta(payload, base + b"extra")

    def test_wrong_base_same_length_detected(self):
        """Same length, different content: checksum must catch it."""
        base = b"a" * 300
        other = b"a" * 299 + b"z"  # same length, content differs
        target = base + b"tail"
        payload = make_delta(base, target)
        with pytest.raises(BaseMismatchError):
            apply_delta(payload, other)

    def test_corrupt_payload_detected(self):
        base = b"content " * 50
        payload = bytearray(make_delta(base, base + b"x"))
        payload[0] ^= 0xFF  # smash the magic
        with pytest.raises(CorruptDeltaError):
            apply_delta(bytes(payload), base)

    def test_stale_base_after_rebase_scenario(self):
        """The deployment failure the checksum exists for: a client applies
        a delta made against base v2 to its cached v1."""
        base_v1 = b"<html>" + b"<p>version one content</p>" * 50 + b"</html>"
        base_v2 = b"<html>" + b"<p>version two content</p>" * 50 + b"</html>"
        target = base_v2.replace(b"two", b"2", 5)
        payload = make_delta(base_v2, target)
        if len(base_v1) == len(base_v2):
            with pytest.raises(BaseMismatchError):
                apply_delta(payload, base_v1)
