"""Unit and property tests for the Vdelta-style encoder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.apply import replay
from repro.delta.instructions import Add, Copy
from repro.delta.vdelta import BaseIndex, VdeltaEncoder


def roundtrip(base: bytes, target: bytes, **kwargs) -> None:
    encoder = VdeltaEncoder(**kwargs)
    result = encoder.encode(base, target)
    assert replay(result.instructions, base) == target


class TestEncodeBasics:
    def test_identical_documents_one_copy(self):
        base = b"the quick brown fox jumps over the lazy dog" * 4
        result = VdeltaEncoder().encode(base, base)
        assert result.instructions == [Copy(0, len(base))]
        assert result.stats.match_ratio == 1.0

    def test_unrelated_documents_all_add(self):
        base = b"a" * 100
        target = b"z" * 100
        result = VdeltaEncoder().encode(base, target)
        # a single-byte target compresses to one RUN instruction
        from repro.delta.instructions import Run

        assert result.instructions == [Run(ord("z"), 100)]
        assert result.stats.match_ratio == 0.0

    def test_unrelated_mixed_content_all_add(self):
        base = b"a" * 100
        target = b"zyxw" * 25  # no runs, nothing matching the base
        result = VdeltaEncoder().encode(base, target)
        assert result.instructions == [Add(target)]
        assert result.stats.match_ratio == 0.0

    def test_empty_base(self):
        roundtrip(b"", b"hello world, nothing to match here")

    def test_empty_target(self):
        result = VdeltaEncoder().encode(b"some base content", b"")
        assert result.instructions == []

    def test_both_empty(self):
        result = VdeltaEncoder().encode(b"", b"")
        assert result.instructions == []

    def test_small_edit(self):
        base = b"<html><body>" + b"<p>paragraph</p>" * 50 + b"</body></html>"
        target = base.replace(b"paragraph", b"PARAGRAPH", 1)
        result = VdeltaEncoder().encode(base, target)
        assert replay(result.instructions, base) == target
        # most of the document should be copied
        assert result.stats.match_ratio > 0.9

    def test_insertion_in_middle(self):
        base = b"0123456789" * 20
        target = base[:100] + b"INSERTED CONTENT" + base[100:]
        roundtrip(base, target)

    def test_deletion_in_middle(self):
        base = b"0123456789" * 20
        target = base[:50] + base[120:]
        roundtrip(base, target)

    def test_reordered_blocks(self):
        block_a = b"A" * 40 + b"unique-a-suffix!"
        block_b = b"B" * 40 + b"unique-b-suffix!"
        roundtrip(block_a + block_b, block_b + block_a)

    def test_repeated_base_content(self):
        # Highly repetitive base exercises the per-key chain cap.
        base = b"<td>cell</td>" * 500
        target = b"<td>cell</td>" * 499 + b"<td>diff</td>"
        roundtrip(base, target)


class TestBackwardExtension:
    def test_backward_extension_shrinks_literals(self):
        # Construct a case where the hash probe lands mid-match: the target
        # shares a long run with the base, but the first chunk of the run
        # also appears elsewhere, so the greedy scan may enter the run late.
        base = b"X" * 64 + b"abcdefghijklmnopqrstuvwxyz0123456789" + b"Y" * 64
        target = b"prefix-" + b"abcdefghijklmnopqrstuvwxyz0123456789" + b"-suffix"
        forward_only = VdeltaEncoder(backward=False).encode(base, target)
        with_backward = VdeltaEncoder(backward=True).encode(base, target)
        assert replay(forward_only.instructions, base) == target
        assert replay(with_backward.instructions, base) == target
        assert (
            with_backward.stats.copied_bytes >= forward_only.stats.copied_bytes
        )

    def test_backward_never_crosses_previous_copy(self):
        base = b"abcdef" * 30
        target = b"abcdef" * 30
        result = VdeltaEncoder().encode(base, target)
        # produced instructions must tile the target exactly
        assert replay(result.instructions, base) == target


class TestEncoderConfig:
    def test_min_match_below_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            VdeltaEncoder(chunk_size=8, min_match=4)

    def test_larger_chunks_still_roundtrip(self):
        base = bytes(random.Random(1).randrange(256) for _ in range(2000))
        target = base[:700] + b"edit" + base[900:]
        roundtrip(base, target, chunk_size=16, min_match=16)

    def test_step_sampling_still_roundtrips(self):
        base = b"0123456789abcdef" * 100
        target = base[:500] + b"@@@" + base[500:]
        roundtrip(base, target, step=8)

    def test_index_reuse_matches_one_shot(self):
        encoder = VdeltaEncoder()
        base = b"shared content block " * 40
        index = encoder.index(base)
        target = base.replace(b"shared", b"SHARED", 3)
        via_index = encoder.encode_with_index(index, target)
        one_shot = encoder.encode(base, target)
        assert via_index.instructions == one_shot.instructions

    def test_index_chunk_size_mismatch_rejected(self):
        encoder = VdeltaEncoder(chunk_size=4)
        index = BaseIndex(b"some base", chunk_size=8)
        with pytest.raises(ValueError):
            encoder.encode_with_index(index, b"target")


class TestStats:
    def test_stats_sum_to_target_length(self):
        base = b"hello world " * 30
        target = b"hello there " * 30
        result = VdeltaEncoder().encode(base, target)
        total = result.stats.copied_bytes + result.stats.added_bytes
        assert total == len(target)

    def test_instruction_counts(self):
        base = b"aaaa bbbb cccc dddd " * 20
        target = base + b"tail"
        result = VdeltaEncoder().encode(base, target)
        copies = sum(1 for i in result.instructions if isinstance(i, Copy))
        adds = len(result.instructions) - copies
        assert result.stats.copies == copies
        assert result.stats.adds == adds


@settings(max_examples=150, deadline=None)
@given(
    base=st.binary(max_size=400),
    target=st.binary(max_size=400),
)
def test_roundtrip_property(base, target):
    """Any (base, target) pair reconstructs exactly."""
    result = VdeltaEncoder().encode(base, target)
    assert replay(result.instructions, base) == target


@settings(max_examples=60, deadline=None)
@given(
    base=st.binary(min_size=50, max_size=300),
    splice_at=st.integers(min_value=0, max_value=300),
    insert=st.binary(max_size=50),
)
def test_roundtrip_on_edited_base(base, splice_at, insert):
    """Targets derived from the base by splicing reconstruct exactly."""
    cut = min(splice_at, len(base))
    target = base[:cut] + insert + base[cut:]
    result = VdeltaEncoder().encode(base, target)
    assert replay(result.instructions, base) == target
    # Derived targets should mostly be copies once they are long enough.
    if len(base) >= 100 and not insert:
        assert result.stats.match_ratio > 0.5
