"""Tests for the RUN instruction (VCDIFF parity)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import apply_delta, make_delta
from repro.delta.apply import replay
from repro.delta.codec import checksum, decode_delta, encode_delta, encoded_size
from repro.delta.instructions import Add, Copy, Run, coalesce, optimize_runs


class TestRunInstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Run(byte=-1, length=5)
        with pytest.raises(ValueError):
            Run(byte=256, length=5)
        with pytest.raises(ValueError):
            Run(byte=65, length=0)

    def test_replay(self):
        assert replay([Run(ord("x"), 5)], b"") == b"xxxxx"

    def test_coalesce_merges_same_byte_runs(self):
        out = list(coalesce([Run(65, 3), Run(65, 4)]))
        assert out == [Run(65, 7)]

    def test_coalesce_keeps_different_byte_runs(self):
        out = list(coalesce([Run(65, 3), Run(66, 4)]))
        assert out == [Run(65, 3), Run(66, 4)]


class TestOptimizeRuns:
    def test_long_run_extracted(self):
        data = b"prefix" + b" " * 100 + b"suffix"
        out = list(optimize_runs([Add(data)], min_run=24))
        assert out == [Add(b"prefix"), Run(ord(" "), 100), Add(b"suffix")]

    def test_short_runs_left_alone(self):
        data = b"a" * 10 + b"b" * 10
        out = list(optimize_runs([Add(data)], min_run=24))
        assert out == [Add(data)]

    def test_all_run(self):
        out = list(optimize_runs([Add(b"=" * 50)], min_run=24))
        assert out == [Run(ord("="), 50)]

    def test_copies_untouched(self):
        out = list(optimize_runs([Copy(0, 100)], min_run=24))
        assert out == [Copy(0, 100)]

    def test_replay_equivalence(self):
        data = b"x" * 30 + b"abc" + b"y" * 40
        original = [Add(data)]
        optimized = list(optimize_runs(original))
        assert replay(optimized, b"") == replay(original, b"")


class TestRunWire:
    def test_codec_roundtrip(self):
        instructions = [Add(b"hi"), Run(0, 1000), Copy(0, 4)]
        payload = encode_delta(instructions, base_length=4, target_checksum=0)
        decoded, tlen, blen, _ = decode_delta(payload)
        assert decoded == instructions
        assert tlen == 1006

    def test_encoded_size_exact(self):
        instructions = [Run(32, 500), Add(b"abc")]
        payload = encode_delta(
            instructions, base_length=0, target_checksum=0
        )
        assert encoded_size(instructions, 0) == len(payload)

    def test_run_much_smaller_than_literal(self):
        base = b"unrelated base content that matches nothing here"
        target = b"<td>" + b" " * 5000 + b"</td>"
        payload = make_delta(base, target)
        assert len(payload) < 100  # literal encoding would be ~5 KB
        assert apply_delta(payload, base) == target

    def test_padding_heavy_document(self):
        """Documents with big padding blocks benefit measurably."""
        base = b"<html><body>stable content here</body></html>"
        target = (
            b"<html><body>stable content here"
            + b"&nbsp;" * 2  # small noise
            + b"-" * 400  # separator row
            + b"fresh tail</body></html>"
        )
        payload = make_delta(base, target)
        assert apply_delta(payload, base) == target
        assert len(payload) < len(target) * 0.4


@settings(max_examples=60, deadline=None)
@given(
    chunks=st.lists(
        st.tuples(st.integers(0, 255), st.integers(1, 120)), max_size=8
    ),
    noise=st.binary(max_size=40),
)
def test_run_heavy_targets_roundtrip(chunks, noise):
    """Targets assembled from runs + noise always reconstruct exactly."""
    target = b"".join(bytes([b]) * n for b, n in chunks) + noise
    base = b"some base with text to maybe match " * 3
    assert apply_delta(make_delta(base, target), base) == target
