"""Tests for the bounded streaming histogram and the metrics registry."""

import math

import pytest

from repro.metrics.histogram import (
    DEFAULT_RESERVOIR_SIZE,
    StreamingHistogram,
    log_spaced_bounds,
    nearest_rank_index,
)
from repro.metrics.registry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    format_sample,
    histogram_lines,
)


class TestNearestRankIndex:
    def test_textbook_cases(self):
        # ceil(n*q/100) - 1 on 0-based indexes
        assert nearest_rank_index(2, 50) == 0
        assert nearest_rank_index(2, 100) == 1
        assert nearest_rank_index(1, 50) == 0
        assert nearest_rank_index(1, 100) == 0
        assert nearest_rank_index(100, 50) == 49
        assert nearest_rank_index(100, 99) == 98
        assert nearest_rank_index(100, 100) == 99

    def test_clamping(self):
        assert nearest_rank_index(0, 50) == 0
        assert nearest_rank_index(5, 0) == 0
        assert nearest_rank_index(5, 200) == 4


class TestLogSpacedBounds:
    def test_ladder_covers_range(self):
        bounds = log_spaced_bounds(1e-3, 1e3, 5)
        assert bounds[0] == 1e-3
        assert bounds[-1] >= 1e3
        # 6 decades at 5 buckets/decade, plus endpoints: ~31 bounds
        assert 28 <= len(bounds) <= 34
        growth = bounds[1] / bounds[0]
        assert growth == pytest.approx(10 ** 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_spaced_bounds(0, 10, 5)
        with pytest.raises(ValueError):
            log_spaced_bounds(10, 10, 5)
        with pytest.raises(ValueError):
            log_spaced_bounds(1, 10, 0)


class TestStreamingHistogramExact:
    """While the population fits the reservoir, percentiles are exact."""

    def test_empty(self):
        hist = StreamingHistogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.min == 0.0
        assert hist.max == 0.0
        assert hist.percentile(50) == 0.0

    def test_small_n_exact(self):
        hist = StreamingHistogram()
        for v in (0.5, 0.1, 0.9, 0.3):
            hist.add(v)
        assert hist.exact
        assert hist.percentile(0) == 0.1
        assert hist.percentile(50) == 0.3
        assert hist.percentile(100) == 0.9
        assert hist.mean == pytest.approx(0.45)
        assert hist.min == 0.1
        assert hist.max == 0.9
        assert hist.sum == pytest.approx(1.8)

    def test_two_values_median_is_lower(self):
        hist = StreamingHistogram(low=0.5, high=100.0)
        hist.add(1.0)
        hist.add(2.0)
        assert hist.percentile(50) == 1.0


class TestStreamingHistogramBounded:
    def test_storage_capped(self):
        hist = StreamingHistogram(reservoir_size=64)
        buckets_before = hist.bucket_count
        for i in range(5_000):
            hist.add((i % 100 + 1) * 1e-3)
        assert hist.count == 5_000
        assert hist.stored_samples <= 64
        assert not hist.exact
        assert hist.bucket_count == buckets_before  # ladder is fixed at init

    def test_bucket_percentiles_within_spacing(self):
        """Past the reservoir, percentiles come from the bucket ladder and
        must stay within one bucket-spacing factor of truth."""
        hist = StreamingHistogram(low=1e-4, high=10.0, reservoir_size=50)
        values = [(i % 1000 + 1) * 1e-3 for i in range(10_000)]  # 1ms..1s
        for v in values:
            hist.add(v)
        truth = sorted(values)
        spacing = 10 ** (1 / 5)  # one bucket width
        for q in (50, 90, 99):
            exact = truth[nearest_rank_index(len(truth), q)]
            approx = hist.percentile(q)
            assert exact / spacing <= approx <= exact * spacing
        # Extremes clamp to observed min/max.
        assert hist.percentile(0) >= hist.min
        assert hist.percentile(100) <= hist.max

    def test_under_and_overflow_buckets(self):
        hist = StreamingHistogram(low=1.0, high=10.0, reservoir_size=2)
        for v in (0.01, 0.02, 5.0, 500.0, 600.0):
            hist.add(v)
        assert hist.count == 5
        pairs = hist.cumulative_buckets()
        assert pairs[-1] == (math.inf, 5)
        # Cumulative counts are monotone and end at count.
        cumulative = [c for _, c in pairs]
        assert cumulative == sorted(cumulative)

    def test_reproducible_reservoir(self):
        a = StreamingHistogram(reservoir_size=16)
        b = StreamingHistogram(reservoir_size=16)
        for i in range(1_000):
            a.add(i * 1e-3)
            b.add(i * 1e-3)
        assert a.percentile(50) == b.percentile(50)
        assert a.snapshot() == b.snapshot()

    def test_snapshot_keys(self):
        hist = StreamingHistogram()
        hist.add(0.25)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["p50"] == pytest.approx(0.25)
        assert set(snap) == {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}

    def test_default_reservoir_size(self):
        assert StreamingHistogram().reservoir_size == DEFAULT_RESERVOIR_SIZE


class TestExposition:
    def test_format_sample(self):
        assert format_sample("repro_x_total", (), 3.0) == "repro_x_total 3"
        line = format_sample("repro_x_total", (("stage", "encode"),), 1.5)
        assert line == 'repro_x_total{stage="encode"} 1.5'

    def test_format_sample_escapes_labels(self):
        line = format_sample("m", (("p", 'a"b\\c\nd'),), 1)
        assert line == 'm{p="a\\"b\\\\c\\nd"} 1'

    def test_histogram_lines_triplet(self):
        hist = StreamingHistogram(low=0.001, high=1.0)
        hist.add(0.25)
        hist.add(0.5)
        lines = histogram_lines("repro_lat_seconds", hist)
        assert lines[-2] == "repro_lat_seconds_sum 0.75"
        assert lines[-1] == "repro_lat_seconds_count 2"
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' == lines[-3]
        # Buckets are cumulative and monotone.
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines[:-2]]
        assert counts == sorted(counts)


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.inc("requests_total", 2)
        registry.inc("requests_total", labels={"mode": "delta"})
        assert registry.counter_value("requests_total") == 3
        assert registry.counter_value("requests_total", {"mode": "delta"}) == 1
        assert registry.counter_value("missing_total") == 0

    def test_observe_picks_bounds_by_suffix(self):
        registry = MetricsRegistry()
        registry.observe("stage_seconds", 0.01, {"stage": "encode"})
        registry.observe("body_bytes", 4096)
        assert registry.histogram("stage_seconds", {"stage": "encode"}).count == 1
        assert registry.histogram("body_bytes").count == 1
        assert registry.histogram("stage_seconds") is None  # labels distinguish
        assert registry.histogram_names() == ["body_bytes", "stage_seconds"]

    def test_timer_records(self):
        registry = MetricsRegistry()
        ticks = iter([10.0, 10.25])
        with registry.time("stage_seconds", {"stage": "x"}, clock=lambda: next(ticks)):
            pass
        hist = registry.histogram("stage_seconds", {"stage": "x"})
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.25)

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", help="requests handled")
        registry.observe("stage_seconds", 0.02, {"stage": "encode"})
        text = registry.render(extra_lines=["repro_custom_gauge 7"])
        assert text.endswith("\n")
        assert "# HELP repro_requests_total requests handled" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 1" in text
        assert "# TYPE repro_stage_seconds histogram" in text
        assert 'repro_stage_seconds_bucket{stage="encode",le="+Inf"} 1' in text
        assert 'repro_stage_seconds_count{stage="encode"} 1' in text
        assert "repro_custom_gauge 7" in text

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", labels={"cls": "a"})
        registry.observe("stage_seconds", 0.1, {"stage": "encode"})
        snap = registry.snapshot()
        assert snap["counters"]["hits_total"]["cls=a"] == 1
        assert snap["histograms"]["stage_seconds"]["stage=encode"]["count"] == 1
