"""Tests for metrics collection and table rendering."""

import pytest

from repro.metrics.collector import BandwidthReport, SizeSample
from repro.metrics.report import fmt_factor, fmt_kb, fmt_pct, render_table


class TestBandwidthReport:
    def _report(self):
        return BandwidthReport(
            name="site1",
            requests=100,
            direct_bytes=1_000_000,
            sent_bytes=40_000,
            base_file_upstream_bytes=10_000,
        )

    def test_total_sent_includes_base_files(self):
        assert self._report().total_sent_bytes == 50_000

    def test_savings(self):
        assert self._report().savings == pytest.approx(0.95)

    def test_reduction_factor(self):
        assert self._report().reduction_factor == pytest.approx(20.0)

    def test_kb_rounding(self):
        report = self._report()
        assert report.direct_kb == round(1_000_000 / 1024)
        assert report.delta_kb == round(50_000 / 1024)

    def test_empty_report(self):
        report = BandwidthReport(name="empty")
        assert report.savings == 0.0
        assert report.reduction_factor == float("inf")


class TestSizeSample:
    def test_mean(self):
        sample = SizeSample()
        for v in (10, 20, 30):
            sample.add(v)
        assert sample.mean == pytest.approx(20.0)
        assert sample.total == 60
        assert sample.count == 3

    def test_percentile(self):
        sample = SizeSample()
        for v in range(100):
            sample.add(v)
        assert sample.percentile(50) == 50
        assert sample.percentile(0) == 0
        assert sample.percentile(100) == 99

    def test_empty(self):
        sample = SizeSample()
        assert sample.mean == 0.0
        assert sample.percentile(50) == 0


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(
            ["Name", "Value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        # all data lines same width structure
        assert len(lines[3].split("|")) == len(lines[4].split("|"))

    def test_formatters(self):
        assert fmt_pct(0.948) == "94.8%"
        assert fmt_kb(1024 * 30) == "30"
        assert fmt_factor(29.96) == "30.0x"
