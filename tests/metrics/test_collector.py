"""Tests for metrics collection and table rendering."""

import pytest

from repro.metrics.collector import BandwidthReport, LatencySample, SizeSample
from repro.metrics.report import fmt_factor, fmt_kb, fmt_pct, render_table


class TestBandwidthReport:
    def _report(self):
        return BandwidthReport(
            name="site1",
            requests=100,
            direct_bytes=1_000_000,
            sent_bytes=40_000,
            base_file_upstream_bytes=10_000,
        )

    def test_total_sent_includes_base_files(self):
        assert self._report().total_sent_bytes == 50_000

    def test_savings(self):
        assert self._report().savings == pytest.approx(0.95)

    def test_reduction_factor(self):
        assert self._report().reduction_factor == pytest.approx(20.0)

    def test_kb_rounding(self):
        report = self._report()
        assert report.direct_kb == round(1_000_000 / 1024)
        assert report.delta_kb == round(50_000 / 1024)

    def test_empty_report(self):
        report = BandwidthReport(name="empty")
        assert report.savings == 0.0
        assert report.reduction_factor == float("inf")


class TestSizeSample:
    def test_mean(self):
        sample = SizeSample()
        for v in (10, 20, 30):
            sample.add(v)
        assert sample.mean == pytest.approx(20.0)
        assert sample.total == 60
        assert sample.count == 3

    def test_percentile(self):
        sample = SizeSample()
        for v in range(100):
            sample.add(v)
        # Nearest-rank: the 50th of 100 sorted values is index 49.
        assert sample.percentile(50) == 49
        assert sample.percentile(0) == 0
        assert sample.percentile(100) == 99

    def test_empty(self):
        sample = SizeSample()
        assert sample.mean == 0.0
        assert sample.percentile(50) == 0


class TestNearestRankRegression:
    """The seed's ``int(n * q / 100)`` indexing was one rank high:
    ``percentile(50)`` of ``[1, 2]`` returned 2.  Nearest-rank is
    ``ceil(n * q / 100) - 1`` clamped to ``[0, n-1]``."""

    @pytest.mark.parametrize("sample_cls", [LatencySample, SizeSample])
    def test_n2_median_is_lower_value(self, sample_cls):
        sample = sample_cls()
        sample.add(1)
        sample.add(2)
        assert sample.percentile(50) == 1

    @pytest.mark.parametrize("sample_cls", [LatencySample, SizeSample])
    def test_n1_every_percentile_is_the_value(self, sample_cls):
        sample = sample_cls()
        sample.add(7)
        for q in (0, 1, 50, 99, 100):
            assert sample.percentile(q) == 7

    @pytest.mark.parametrize("sample_cls", [LatencySample, SizeSample])
    def test_q100_is_max_and_in_range(self, sample_cls):
        sample = sample_cls()
        for v in (5, 1, 9, 3):
            sample.add(v)
        assert sample.percentile(100) == 9
        # q=100 must never index past the end (the old off-by-one relied
        # on a clamp that silently hid the bias everywhere else).
        assert sample.percentile(99.999) == 9

    def test_latency_p50_of_two_floats(self):
        sample = LatencySample()
        sample.add(0.010)
        sample.add(0.020)
        assert sample.percentile(50) == pytest.approx(0.010)
        assert sample.percentile(99) == pytest.approx(0.020)

    def test_memory_is_bounded(self):
        sample = LatencySample()
        for i in range(10_000):
            sample.add(i * 1e-4)
        histogram = sample.histogram
        assert histogram.count == 10_000
        assert histogram.stored_samples <= histogram.reservoir_size
        assert sample.mean == pytest.approx(sum(i * 1e-4 for i in range(10_000)) / 10_000)


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(
            ["Name", "Value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        # all data lines same width structure
        assert len(lines[3].split("|")) == len(lines[4].split("|"))

    def test_formatters(self):
        assert fmt_pct(0.948) == "94.8%"
        assert fmt_kb(1024 * 30) == "30"
        assert fmt_factor(29.96) == "30.0x"
