"""Tests for the origin bridge (repro.serve.gateway)."""

import asyncio
import time

import pytest

from repro.http.messages import Request, Response
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.resilience.faults import FaultPlan, FaultRule, OriginResetError
from repro.serve.gateway import OriginGateway


@pytest.fixture()
def origin():
    return OriginServer([SyntheticSite(SiteSpec(name="www.g.example"))])


def first_url(origin: OriginServer) -> str:
    site = origin.site("www.g.example")
    return site.url_for(site.all_pages()[0])


def test_fetch_sync_hits_origin(origin):
    gateway = OriginGateway(origin)
    response = gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    assert response.status == 200
    assert len(response.body) > 1000
    assert gateway.stats.fetches == 1


def test_async_fetch_same_result(origin):
    gateway = OriginGateway(origin)
    request = Request(url=first_url(origin))
    sync_body = gateway.fetch_sync(request, now=0.0).body
    async_body = asyncio.run(gateway.fetch(request, now=0.0)).body
    assert sync_body == async_body


def test_latency_injection_delays_fetch(origin):
    gateway = OriginGateway(origin, latency=0.05)
    started = time.perf_counter()
    gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    assert time.perf_counter() - started >= 0.05
    assert gateway.stats.injected_latency_seconds >= 0.05


def test_jitter_stays_in_band(origin):
    gateway = OriginGateway(origin, latency=0.01, jitter=0.02, seed=3)
    delays = [gateway._draw_delay() for _ in range(50)]
    assert all(0.01 <= d <= 0.03 for d in delays)
    assert len(set(delays)) > 1


def test_fault_hook_substitutes_response(origin):
    def hook(request: Request) -> Response | None:
        if "id=0" in request.url:
            return Response(status=503, body=b"injected outage")
        return None

    gateway = OriginGateway(origin, fault_hook=hook)
    url = first_url(origin)
    assert "id=0" in url
    response = gateway.fetch_sync(Request(url=url), now=0.0)
    assert response.status == 503 and response.body == b"injected outage"
    assert gateway.stats.faults_injected == 1
    # Other URLs pass through untouched.
    other = url.replace("id=0", "id=1")
    assert gateway.fetch_sync(Request(url=other), now=0.0).status == 200
    assert gateway.stats.faults_injected == 1


def test_negative_latency_rejected(origin):
    with pytest.raises(ValueError):
        OriginGateway(origin, latency=-1.0)
    with pytest.raises(ValueError):
        OriginGateway(origin, jitter=-0.1)


def test_raising_fault_hook_becomes_injected_500(origin):
    calls = []

    def hook(request: Request) -> Response | None:
        calls.append(request.url)
        raise RuntimeError("hook bug")

    gateway = OriginGateway(origin, fault_hook=hook)
    response = gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    assert response.status == 500
    assert response.body == b"fault hook raised"
    assert gateway.stats.hook_failures == 1
    assert gateway.stats.faults_injected == 0
    assert len(calls) == 1
    # The gateway survives: the next fetch works normally.
    assert gateway.stats.fetches == 1


def test_fault_plan_error_rule(origin):
    plan = FaultPlan([FaultRule(kind="error", status=502, body=b"down")])
    gateway = OriginGateway(origin, fault_plan=plan)
    response = gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    assert response.status == 502 and response.body == b"down"
    assert gateway.stats.faults_injected == 1


def test_fault_plan_reset_rule(origin):
    plan = FaultPlan([FaultRule(kind="reset")])
    gateway = OriginGateway(origin, fault_plan=plan)
    with pytest.raises(OriginResetError):
        gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    assert gateway.stats.resets_injected == 1
    # The lock was released on the raise: the gateway still works once
    # the plan is disabled.
    plan.disable()
    assert gateway.fetch_sync(Request(url=first_url(origin)), now=0.0).status == 200


def test_fault_plan_corruption_mangles_body(origin):
    plan = FaultPlan([FaultRule(kind="corrupt", flips=4)])
    gateway = OriginGateway(origin, fault_plan=plan)
    request = Request(url=first_url(origin))
    clean = OriginGateway(origin).fetch_sync(request, now=0.0)
    mangled = gateway.fetch_sync(request, now=0.0)
    assert mangled.status == 200
    assert mangled.body != clean.body
    assert len(mangled.body) == len(clean.body)
    assert gateway.stats.corruptions_injected == 1


def test_fault_plan_drip_slows_response(origin):
    plan = FaultPlan([FaultRule(kind="drip", bps=200_000.0)])
    gateway = OriginGateway(origin, fault_plan=plan)
    started = time.perf_counter()
    response = gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    elapsed = time.perf_counter() - started
    expected = len(response.body) / 200_000.0
    assert elapsed >= expected
    assert gateway.stats.drip_seconds >= expected


def test_fault_plan_latency_adds_pre_delay(origin):
    plan = FaultPlan([FaultRule(kind="latency", delay=0.03)])
    gateway = OriginGateway(origin, fault_plan=plan)
    started = time.perf_counter()
    gateway.fetch_sync(Request(url=first_url(origin)), now=0.0)
    assert time.perf_counter() - started >= 0.03
    assert gateway.stats.injected_latency_seconds >= 0.03
