"""Live-socket tests: the full serve stack over real TCP connections.

Every test binds an ephemeral port on loopback, speaks actual HTTP/1.1
through :mod:`repro.serve.protocol`'s client side, and verifies the
byte-for-byte reconstruction guarantee end to end.  ``pytest-asyncio``
is not a dependency; each test drives its own ``asyncio.run``.
"""

import asyncio

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.delta.apply import apply_delta
from repro.delta.compress import decompress
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_CONTENT_ENCODING,
    Request,
    parse_base_ref,
)
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.serve import (
    HEADER_BODY_DIGEST,
    HEADER_SERVED_AT,
    LoadGenConfig,
    LoadGenerator,
    build_server,
    digest_matches,
    read_response,
    serialize_request,
)
from repro.serve.server import DeltaHTTPServer
from repro.core.delta_server import DeltaServer
from repro.workload.generator import WorkloadSpec, generate_workload

SITE = "www.live.example"


def make_spec(**overrides) -> SiteSpec:
    defaults = dict(name=SITE, products_per_category=3)
    defaults.update(overrides)
    return SiteSpec(**defaults)


def make_server(**kwargs) -> DeltaHTTPServer:
    spec = kwargs.pop("spec", None) or make_spec()
    kwargs.setdefault(
        "config",
        DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
        ),
    )
    return build_server([SyntheticSite(spec)], **kwargs)


class Client:
    """One keep-alive HTTP connection speaking the repo's wire mapping."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "Client":
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def get(self, url: str, user: str | None = None, accept: str | None = None):
        if self.reader is None:
            await self.connect()
        cookies = {"uid": user} if user else {}
        request = Request(url=url, cookies=cookies, client_id=user or "anonymous")
        if accept:
            request.headers.set(HEADER_ACCEPT_DELTA, accept)
        self.writer.write(serialize_request(request))
        await self.writer.drain()
        parsed = await asyncio.wait_for(read_response(self.reader), 10.0)
        return parsed.response

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None


def page_url(server: DeltaHTTPServer) -> str:
    site = server.gateway.origin.site(SITE)
    return site.url_for(site.all_pages()[0])


async def warm_up(client: Client, url: str, users=("u1", "u2", "u3")) -> str:
    """Drive anonymization to READY over the wire; return the advertised ref."""
    ref = None
    for user in users:
        response = await client.get(url, user=user)
        assert response.status == 200
        ref = response.base_file_ref or ref
    assert ref is not None
    return ref


class TestLiveServing:
    def test_full_document_with_digest(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    response = await client.get(page_url(server), user="u1")
                finally:
                    client.close()
                assert response.status == 200
                assert not response.is_delta
                assert digest_matches(
                    response.headers.get(HEADER_BODY_DIGEST), response.body
                )
                assert response.headers.get("Server") == "repro-serve/1.0"
                assert server.stats.full_documents == 1

        asyncio.run(main())

    def test_delta_reconstruction_byte_for_byte(self):
        """The paper's core guarantee, verified entirely client-side."""
        spec = make_spec()
        twin = OriginServer([SyntheticSite(spec)])  # independent renderer

        async def main():
            async with make_server(spec=make_spec()) as server:
                url = page_url(server)
                client = Client(*server.address)
                try:
                    ref = await warm_up(client, url)
                    # Fetch the advertised base-file over the same connection.
                    class_id, version = parse_base_ref(ref)
                    base_url = DeltaServer.base_file_url(SITE, class_id, version)
                    base_response = await client.get(base_url)
                    assert base_response.status == 200
                    assert base_response.cachable
                    assert digest_matches(
                        base_response.headers.get(HEADER_BODY_DIGEST),
                        base_response.body,
                    )
                    # Now request the document as a base-holder: delta comes back.
                    response = await client.get(url, user="u9", accept=ref)
                    assert response.is_delta
                    assert response.delta_base_ref == ref
                    payload = response.body
                    if response.headers.get(HEADER_CONTENT_ENCODING) == "deflate":
                        payload = decompress(payload)
                    document = apply_delta(payload, base_response.body)
                    # Re-render the exact snapshot the server saw.
                    served_at = float(response.headers.get(HEADER_SERVED_AT))
                    request = Request(
                        url=url, cookies={"uid": "u9"}, client_id="u9"
                    )
                    assert document == twin.handle(request, served_at).body
                    assert len(response.body) < 0.2 * len(document)
                    assert server.stats.deltas_served == 1
                finally:
                    client.close()

        asyncio.run(main())

    def test_plain_mode_serves_fulls_only(self):
        async def main():
            async with make_server(mode="plain") as server:
                url = page_url(server)
                client = Client(*server.address)
                try:
                    for user in ("u1", "u2", "u1"):
                        response = await client.get(url, user=user)
                        assert response.status == 200
                        assert not response.is_delta
                        assert response.base_file_ref is None
                finally:
                    client.close()
                assert server.stats.full_documents == 3
                assert server.stats.deltas_served == 0

        asyncio.run(main())

    def test_large_documents_sent_chunked(self):
        async def main():
            # Default ~35 KB documents against a tiny chunk threshold.
            async with make_server(chunk_threshold=1024) as server:
                client = Client(*server.address)
                try:
                    response = await client.get(page_url(server), user="u1")
                finally:
                    client.close()
                assert response.status == 200
                assert digest_matches(
                    response.headers.get(HEADER_BODY_DIGEST), response.body
                )

        asyncio.run(main())

    def test_404_passthrough_over_wire(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    response = await client.get(f"{SITE}/nope?id=0", user="u1")
                finally:
                    client.close()
                assert response.status == 404

        asyncio.run(main())

    def test_malformed_request_gets_400(self):
        async def main():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"NONSENSE\r\n\r\n")
                await writer.drain()
                parsed = await asyncio.wait_for(read_response(reader), 5.0)
                writer.close()
                assert parsed.response.status == 400
                assert server.stats.protocol_errors == 1

        asyncio.run(main())


class TestCapacityBehaviour:
    def test_connection_slots_exhausted_503(self):
        """The paper's 255-connection ceiling, scaled to 1: overflow is
        turned away with 503 instead of queueing."""

        async def main():
            async with make_server(max_connections=1) as server:
                holder = await Client(*server.address).connect()
                try:
                    # Occupy the only slot with a real request.
                    response = await holder.get(page_url(server), user="u1")
                    assert response.status == 200
                    overflow = Client(*server.address)
                    rejected = await overflow.get(page_url(server), user="u2")
                    overflow.close()
                    assert rejected.status == 503
                    assert server.stats.connections_rejected == 1
                finally:
                    holder.close()

        asyncio.run(main())

    def test_slow_dispatch_times_out_504(self):
        async def main():
            async with make_server(
                origin_latency=0.5, request_timeout=0.05
            ) as server:
                client = Client(*server.address)
                try:
                    response = await client.get(page_url(server), user="u1")
                    assert response.status == 504
                    assert server.stats.timeouts == 1
                    # The connection survives; patient requests still work.
                finally:
                    client.close()

        asyncio.run(main())

    def test_event_loop_not_blocked_by_slow_requests(self):
        """Two slow dispatches overlap on worker threads: wall-clock is
        ~1x the injected latency, not 2x serial.  Plain mode, because in
        delta mode requests additionally serialize on the engine lock
        (the paper's single-CPU server) — loop responsiveness is the
        property under test here."""

        async def main():
            async with make_server(origin_latency=0.2, mode="plain") as server:
                url = page_url(server)
                loop = asyncio.get_running_loop()
                started = loop.time()

                async def one(user: str) -> int:
                    client = Client(*server.address)
                    try:
                        return (await client.get(url, user=user)).status
                    finally:
                        client.close()

                statuses = await asyncio.gather(one("u1"), one("u2"))
                elapsed = loop.time() - started
                assert statuses == [200, 200]
                assert elapsed < 0.38, f"requests serialized: {elapsed:.2f}s"

        asyncio.run(main())

    def test_graceful_close_rejects_new_connections(self):
        async def main():
            server = make_server()
            await server.start()
            address = server.address
            await server.close()
            with pytest.raises((ConnectionError, OSError)):
                reader, writer = await asyncio.open_connection(*address)
                writer.close()

        asyncio.run(main())


class TestLoadGenerator:
    def _workload(self, requests: int = 80, seed: int = 9):
        return generate_workload(
            [SyntheticSite(make_spec())],
            WorkloadSpec(
                name="live",
                requests=requests,
                users=6,
                duration=30.0,
                revisit_bias=0.7,
                seed=seed,
            ),
        )

    def _verify_render(self):
        twin = OriginServer([SyntheticSite(make_spec())])

        def verify(url: str, user: str, served_at: float) -> bytes:
            request = Request(url=url, cookies={"uid": user}, client_id=user)
            return twin.handle(request, served_at).body

        return verify

    def test_closed_loop_end_to_end(self):
        workload = self._workload()

        async def main():
            async with make_server(spec=make_spec()) as server:
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(host=host, port=port, mode="closed", concurrency=4),
                    verify_render=self._verify_render(),
                )
                return await generator.run(workload.trace), server.stats

        report, stats = asyncio.run(main())
        assert report.completed == len(workload.trace)
        assert report.errors == 0
        assert report.verify_failures == 0
        assert report.delta_failures == 0
        assert report.deltas > 0, "no deltas exercised"
        assert report.base_fetches > 0
        assert stats.deltas_served == report.deltas
        assert report.rps > 0
        assert report.latencies.count == report.completed

    def test_open_loop_end_to_end(self):
        workload = self._workload(requests=50, seed=4)

        async def main():
            async with make_server(spec=make_spec()) as server:
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, mode="open",
                        concurrency=6, rate=400.0,
                    ),
                    verify_render=self._verify_render(),
                )
                return await generator.run(workload.trace)

        report = asyncio.run(main())
        assert report.completed == 50
        assert report.errors == 0
        assert report.verify_failures == 0
        assert report.peak_in_flight >= 2  # arrivals actually overlapped

    def test_plain_mode_baseline_moves_more_bytes(self):
        workload = self._workload(requests=60, seed=5)

        async def run_mode(mode: str):
            async with make_server(spec=make_spec(), mode=mode) as server:
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(host=host, port=port, concurrency=4)
                )
                return await generator.run(workload.trace)

        plain = asyncio.run(run_mode("plain"))
        delta = asyncio.run(run_mode("delta"))
        assert plain.verify_failures == delta.verify_failures == 0
        assert plain.deltas == 0 and delta.deltas > 0
        # Delta mode moves fewer document bytes over the wire (Table II live).
        assert delta.document_wire_bytes < plain.document_wire_bytes

    def test_report_render(self):
        workload = self._workload(requests=20, seed=6)

        async def main():
            async with make_server(spec=make_spec()) as server:
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(host=host, port=port, concurrency=2)
                )
                return await generator.run(workload.trace)

        report = asyncio.run(main())
        text = report.render()
        assert "throughput" in text and "req/s" in text
        assert f"{report.requests} / {report.completed}" in text
