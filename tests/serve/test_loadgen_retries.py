"""Loadgen transport-level retries: resets and refusals are retryable.

A SIGKILLed fleet worker looks like a dropped TCP connection, not a 503.
The load generator classifies those transport failures — connection
closed before/inside a response, reset, refused reconnect — as
retryable alongside 502/503/504, counted under the ``"reset"`` key of
``retries_by_status``.  Framing errors stay fatal: a malformed response
is a bug, not a restart signature.
"""

import asyncio

from repro.http.messages import Response
from repro.serve.loadgen import RETRY_TRANSPORT, LoadGenConfig, LoadGenerator
from repro.serve.protocol import (
    HEADER_BODY_DIGEST,
    HEADER_SERVED_AT,
    body_digest,
    read_request,
    serialize_response,
)
from repro.workload.trace import Trace, TraceRecord

BODY = b"<html>" + b"static fleet test page " * 40 + b"</html>"


def make_trace(requests: int) -> Trace:
    return Trace(
        name="retries",
        records=[
            TraceRecord(timestamp=float(i), user="u1", url="www.flaky.example/page")
            for i in range(requests)
        ],
    )


class FlakyServer:
    """Accepts connections; sabotages the first few in a scripted way.

    ``plan`` is a list of behaviours consumed one per accepted
    connection: ``"close"`` drops the socket before any response bytes,
    ``"midbody"`` sends half a response then drops, ``"garbage"`` sends
    unparseable bytes, and ``"serve"`` (the steady state once the plan
    is exhausted) answers every request with a digest-tagged 200.
    """

    def __init__(self, plan: list[str]):
        self.plan = list(plan)
        self.accepted = 0
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def _response_bytes(self) -> bytes:
        response = Response(status=200, body=BODY)
        response.headers.set(HEADER_BODY_DIGEST, body_digest(BODY))
        response.headers.set(HEADER_SERVED_AT, "0.0")
        return serialize_response(response, keep_alive=True)

    async def _handle(self, reader, writer):
        self.accepted += 1
        behaviour = self.plan.pop(0) if self.plan else "serve"
        try:
            if behaviour == "close":
                return
            if behaviour == "garbage":
                await read_request(reader)
                writer.write(b"NOT HTTP AT ALL\r\n\r\n")
                await writer.drain()
                return
            if behaviour == "midbody":
                await read_request(reader)
                writer.write(self._response_bytes()[: len(BODY) // 2])
                await writer.drain()
                return
            while True:
                parsed = await read_request(reader)
                if parsed is None:
                    return
                writer.write(self._response_bytes())
                await writer.drain()
                if not parsed.keep_alive:
                    return
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()


def run_against(plan: list[str], requests: int = 5, **config):
    async def main():
        server = FlakyServer(plan)
        host, port = await server.start()
        defaults = dict(
            host=host,
            port=port,
            concurrency=1,
            retries=3,
            retry_backoff=0.01,
            retry_backoff_cap=0.05,
        )
        defaults.update(config)
        try:
            return await LoadGenerator(LoadGenConfig(**defaults)).run(
                make_trace(requests)
            )
        finally:
            await server.stop()

    return asyncio.run(main())


class TestTransportRetries:
    def test_close_before_response_is_retried(self):
        report = run_against(["close", "close"])
        assert report.completed == 5
        assert report.errors == 0
        assert report.verify_failures == 0
        assert report.retries_by_status[RETRY_TRANSPORT] >= 2

    def test_close_mid_body_is_retried(self):
        report = run_against(["midbody"], requests=4)
        assert report.completed == 4
        assert report.errors == 0
        assert report.retries_by_status[RETRY_TRANSPORT] >= 1

    def test_exhausted_retries_surface_as_errors(self):
        # Every connection dies: the budget runs out and the request is
        # an error — never an unhandled exception out of run().
        report = run_against(["close"] * 50, requests=2, retries=2)
        assert report.completed == 0
        assert report.errors == 2
        assert report.retries_by_status[RETRY_TRANSPORT] > 0

    def test_refused_connect_is_retried_then_errors(self):
        async def main():
            # Allocate a port with no listener: connects are refused.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            host, port = probe.sockets[0].getsockname()[:2]
            probe.close()
            await probe.wait_closed()
            generator = LoadGenerator(
                LoadGenConfig(
                    host=host,
                    port=port,
                    concurrency=1,
                    retries=2,
                    retry_backoff=0.01,
                    retry_backoff_cap=0.02,
                )
            )
            return await generator.run(make_trace(1))

        report = asyncio.run(main())
        assert report.completed == 0
        assert report.errors == 1
        assert report.retries_by_status[RETRY_TRANSPORT] == 2

    def test_framing_garbage_is_not_retried(self):
        # A malformed response is a bug: the request fails without
        # consuming transport retries.
        report = run_against(["garbage"], requests=3)
        assert report.errors == 1
        assert report.completed == 2
        assert report.retries_by_status.get(RETRY_TRANSPORT, 0) == 0

    def test_render_mixes_status_and_transport_keys(self):
        report = run_against(["close"])
        report.retries_by_status[503] += 1  # as after a worker restart
        text = report.render()
        assert "reset" in text and "503" in text
