"""Tests for the live serving counters (repro.serve.stats)."""

from repro.http.messages import (
    HEADER_DEGRADED,
    HEADER_DELTA,
    HEADER_DELTA_BASE,
    Response,
)
from repro.serve.stats import ServeStats


def delta_response() -> Response:
    response = Response(status=200, body=b"delta-bytes")
    response.headers.set(HEADER_DELTA, "cls1/1")
    return response


def base_file_response() -> Response:
    response = Response(status=200, body=b"base-bytes")
    response.headers.set(HEADER_DELTA_BASE, "cls1/1")
    response.mark_cachable()
    return response


def full_response() -> Response:
    # Full documents may advertise a base (X-Delta-Base) without being one.
    response = Response(status=200, body=b"full-document")
    response.headers.set(HEADER_DELTA_BASE, "cls1/1")
    return response


def test_connection_peak_tracking():
    stats = ServeStats()
    stats.on_connection_open()
    stats.on_connection_open()
    stats.on_connection_close()
    stats.on_connection_open()
    stats.on_connection_rejected()
    assert stats.connections_accepted == 3
    assert stats.connections_rejected == 1
    assert stats.active_connections == 2
    assert stats.peak_connections == 2


def test_response_classification():
    stats = ServeStats()
    stats.on_response(delta_response(), wire_bytes=100, latency_seconds=0.002)
    stats.on_response(full_response(), wire_bytes=500, latency_seconds=0.004)
    stats.on_response(base_file_response(), wire_bytes=400, latency_seconds=0.001)
    stats.on_response(Response(status=404, body=b"no"), 60, 0.001)
    stats.on_response(Response(status=500, body=b"boom"), 60, None)
    assert stats.deltas_served == 1
    assert stats.full_documents == 1
    assert stats.base_files_served == 1
    assert stats.errors == 1
    assert stats.responses == 5
    assert stats.bytes_out == 100 + 500 + 400 + 60 + 60
    assert stats.status_counts[200] == 3
    assert stats.latencies.count == 4  # None latency not sampled


def test_throughput_and_render():
    stats = ServeStats()
    stats.started_at = 100.0
    for _ in range(10):
        stats.on_response(full_response(), wire_bytes=100, latency_seconds=0.01)
    assert stats.throughput_rps(105.0) == 2.0
    assert stats.throughput_rps(100.0) == 0.0
    text = stats.render(now=105.0)
    assert "2.0 req/s" in text
    assert "requests / responses" in text


def test_rejection_bytes_and_status_accounted():
    stats = ServeStats()
    stats.on_connection_rejected(wire_bytes=120)
    assert stats.connections_rejected == 1
    assert stats.responses == 1
    assert stats.bytes_out == 120
    assert stats.status_counts[503] == 1
    # The no-argument form (wire size unknown) still counts the 503 as a
    # response; only bytes_out is left untouched.
    stats.on_connection_rejected()
    assert stats.connections_rejected == 2
    assert stats.responses == 2
    assert stats.bytes_out == 120
    assert stats.status_counts[503] == 2


def test_status_counts_sum_matches_responses():
    """Invariant: every response on the wire lands in status_counts.

    The seed counted rejected-connection 503s in ``status_counts`` but
    not in ``responses``, so the two disagreed under admission-control
    load."""
    stats = ServeStats()
    stats.on_response(delta_response(), wire_bytes=100, latency_seconds=0.002)
    stats.on_response(Response(status=404, body=b"no"), 60, 0.001)
    stats.on_connection_rejected(wire_bytes=120)
    stats.on_connection_rejected()
    stats.on_response(Response(status=500, body=b"boom"), 60, None)
    assert sum(stats.status_counts.values()) == stats.responses == 5


def test_exception_classification():
    stats = ServeStats()
    try:
        raise ValueError("bad input")
    except ValueError as exc:
        stats.on_exception(exc)
    try:
        raise ValueError("again")
    except ValueError as exc:
        stats.on_exception(exc)
    try:
        raise KeyError("missing")
    except KeyError as exc:
        stats.on_exception(exc)
    assert stats.exception_counts["ValueError"] == 2
    assert stats.exception_counts["KeyError"] == 1
    assert "KeyError" in stats.last_error
    assert "missing" in stats.last_error


def test_degraded_responses_counted():
    stats = ServeStats()
    stale = Response(status=200, body=b"old base")
    stale.headers.set(HEADER_DEGRADED, "stale-base")
    unavailable = Response(status=502, body=b"origin down")
    unavailable.headers.set(HEADER_DEGRADED, "origin-unavailable")
    stats.on_response(stale, wire_bytes=100, latency_seconds=0.001)
    stats.on_response(unavailable, wire_bytes=60, latency_seconds=0.001)
    assert stats.degraded_stale == 1
    assert stats.degraded_unavailable == 1
    # The 502 counts as an error; the stale 200 does not.
    assert stats.errors == 1


def test_render_includes_resilience_rows():
    stats = ServeStats()
    try:
        raise RuntimeError("boom")
    except RuntimeError as exc:
        stats.on_exception(exc)
    text = stats.render()
    assert "degraded stale / unavailable" in text
    assert "RuntimeError:1" in text


def test_render_with_zero_traffic():
    """render/__health__ must not divide by zero or index empty samples."""
    stats = ServeStats()
    text = stats.render()
    assert "requests / responses" in text
    assert "0 / 0" in text
    # With a clock but no started_at, throughput stays defined.
    assert stats.throughput_rps(123.0) == 0.0
    text_with_now = stats.render(now=123.0)
    assert "0.0 req/s" in text_with_now


def test_snapshot_line_zero_and_live():
    stats = ServeStats()
    line = stats.snapshot_line()
    assert line.startswith("[metrics] uptime=0.0s")
    assert "rps=0.0" in line
    stats.started_at = 10.0
    for _ in range(4):
        stats.on_response(full_response(), wire_bytes=100, latency_seconds=0.01)
    line = stats.snapshot_line(now=12.0)
    assert "uptime=2.0s" in line
    assert "responses=4" in line
    assert "rps=2.0" in line
    assert "p50=10.0ms" in line


def test_prometheus_lines_zero_traffic():
    stats = ServeStats()
    lines = stats.prometheus_lines()
    text = "\n".join(lines)
    assert "repro_requests_total 0" in text
    assert "repro_responses_total 0" in text
    # Empty histograms still expose a complete bucket/sum/count family.
    assert 'repro_request_latency_seconds_bucket{le="+Inf"} 0' in text
    assert "repro_request_latency_seconds_count 0" in text
    # No uptime gauge without a clock.
    assert "repro_uptime_seconds" not in text


def test_prometheus_lines_reflect_counters():
    stats = ServeStats()
    stats.started_at = 100.0
    stats.on_response(delta_response(), wire_bytes=100, latency_seconds=0.002)
    stats.on_response(Response(status=404, body=b"no"), 60, 0.001)
    stats.on_connection_rejected(wire_bytes=120)
    lines = stats.prometheus_lines(now=110.0)
    text = "\n".join(lines)
    assert "repro_deltas_served_total 1" in text
    assert 'repro_responses_by_status_total{status="404"} 1' in text
    assert 'repro_responses_by_status_total{status="503"} 1' in text
    assert "repro_uptime_seconds 10" in text
    assert "repro_request_latency_seconds_count 2" in text
    assert "repro_response_body_bytes_count 2" in text


def test_sample_storage_stays_bounded_after_soak():
    """Satellite: 10k responses must not grow sample storage past the
    reservoir cap (the seed kept every observation in a list)."""
    stats = ServeStats()
    for i in range(10_000):
        stats.on_response(
            full_response(), wire_bytes=100 + i % 7, latency_seconds=(i % 50) * 1e-4
        )
    assert stats.latencies.count == 10_000
    assert stats.response_sizes.count == 10_000
    lat_hist = stats.latencies.histogram
    size_hist = stats.response_sizes.histogram
    assert lat_hist.stored_samples <= lat_hist.reservoir_size
    assert size_hist.stored_samples <= size_hist.reservoir_size
    # Percentiles still answer from the bounded structure.
    assert 0.0 <= stats.latencies.percentile(99) <= 50 * 1e-4 * 2
    # response_sizes samples body length (every body is b"full-document")
    assert stats.response_sizes.percentile(50) == len(b"full-document")
