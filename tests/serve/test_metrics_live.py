"""Live-socket tests for the observability surface: ``GET /__metrics__``
Prometheus exposition, trace-id propagation, and per-stage timing headers.
"""

import asyncio
import re

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_STAGE_TIMES,
    HEADER_TRACE_ID,
    Request,
)
from repro.metrics import PROMETHEUS_CONTENT_TYPE
from repro.origin.site import SiteSpec, SyntheticSite
from repro.serve import (
    METRICS_PATH,
    build_server,
    read_response,
    serialize_request,
)
from repro.serve.server import DeltaHTTPServer

SITE = "www.met.example"

# One exposition line: comment, blank, or  name{labels} value [timestamp]
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (?:[+-]?Inf|NaN|[+-]?[0-9.eE+-]+)( [0-9]+)?$"
)


def malformed_lines(text: str) -> list[str]:
    bad = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if _COMMENT.match(line) or _SAMPLE.match(line):
            continue
        bad.append(line)
    return bad


def make_server(**kwargs) -> DeltaHTTPServer:
    spec = kwargs.pop("spec", None) or SiteSpec(name=SITE, products_per_category=3)
    kwargs.setdefault(
        "config",
        DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
        ),
    )
    return build_server([SyntheticSite(spec)], **kwargs)


class Client:
    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None

    async def get(self, url: str, user: str = "u1", headers: dict | None = None):
        if self.reader is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        for name, value in (headers or {}).items():
            request.headers.set(name, value)
        self.writer.write(serialize_request(request))
        await self.writer.drain()
        parsed = await asyncio.wait_for(read_response(self.reader), 10.0)
        if not parsed.keep_alive:
            self.close()
        return parsed.response

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None


def page_url(server: DeltaHTTPServer) -> str:
    site = server.gateway.origin.site(SITE)
    return site.url_for(site.all_pages()[0])


class TestMetricsEndpoint:
    def test_metrics_over_the_wire(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    for user in ("u1", "u2", "u3"):
                        assert (await client.get(page_url(server), user)).status == 200
                    response = await client.get(f"{SITE}/{METRICS_PATH}")
                finally:
                    client.close()
                assert response.status == 200
                assert response.headers.get("Content-Type") == PROMETHEUS_CONTENT_TYPE
                text = response.body.decode()
                assert malformed_lines(text) == []
                assert text.endswith("\n")
                # Serve-layer counters (the scrape itself is request #4).
                assert "repro_requests_total 4" in text
                assert 'repro_responses_by_status_total{status="200"} 3' in text
                # Engine stage histograms with cumulative le buckets.
                assert re.search(
                    r'repro_engine_stage_seconds_bucket\{stage="origin_fetch",le="[0-9.e+-]+"\} \d+',
                    text,
                )
                assert 'repro_engine_stage_seconds_bucket{stage="origin_fetch",le="+Inf"} 3' in text
                assert 'repro_engine_stage_seconds_count{stage="origin_fetch"} 3' in text
                # Engine + resilience families render alongside.
                assert "repro_engine_requests_total 3" in text
                assert 'repro_origin_attempt_seconds_count{outcome="success"} 3' in text
                assert 'repro_breaker_state{state="closed"} 1' in text
                # The scrape itself is not a document request.
                assert "repro_health_checks_total 0" in text

        asyncio.run(main())

    def test_metrics_with_zero_traffic(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    response = await client.get(f"{SITE}/{METRICS_PATH}")
                finally:
                    client.close()
                assert response.status == 200
                text = response.body.decode()
                assert malformed_lines(text) == []
                assert "repro_responses_total 0" in text
                assert 'repro_request_latency_seconds_bucket{le="+Inf"} 0' in text

        asyncio.run(main())


class TestTracePropagation:
    def test_server_mints_and_echoes_trace_ids(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    first = await client.get(page_url(server), "u1")
                    second = await client.get(page_url(server), "u2")
                finally:
                    client.close()
                a = first.headers.get(HEADER_TRACE_ID)
                b = second.headers.get(HEADER_TRACE_ID)
                assert a and b and a != b
                # <8-hex-prefix>-<hex-seq>: same server prefix, increasing seq.
                assert re.fullmatch(r"[0-9a-f]{8}-[0-9a-f]{6}", a)
                assert a.split("-")[0] == b.split("-")[0]

        asyncio.run(main())

    def test_client_supplied_trace_id_is_honoured(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    response = await client.get(
                        page_url(server), "u1",
                        headers={HEADER_TRACE_ID: "loadgen-req-0042"},
                    )
                finally:
                    client.close()
                assert response.headers.get(HEADER_TRACE_ID) == "loadgen-req-0042"

        asyncio.run(main())

    def test_stage_times_header_on_document_responses(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    response = await client.get(page_url(server), "u1")
                finally:
                    client.close()
                header = response.headers.get(HEADER_STAGE_TIMES)
                assert header
                stages = dict(
                    part.split("=", 1) for part in header.split(";") if "=" in part
                )
                assert "origin_fetch" in stages
                assert all(float(v) >= 0.0 for v in stages.values())

        asyncio.run(main())
