"""Live-socket resilience tests: health endpoint, degradation, client retries.

The chaos-soak acceptance scenario lives in
``tests/integration/test_chaos_soak.py``; these tests pin each resilience
surface individually over real connections.
"""

import asyncio
import json

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.http.messages import Request
from repro.origin.site import SiteSpec, SyntheticSite
from repro.resilience.breaker import CLOSED, OPEN
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.policy import ResilienceConfig
from repro.serve import (
    HEALTH_PATH,
    LoadGenConfig,
    LoadGenerator,
    build_server,
    read_response,
    serialize_request,
)
from repro.serve.server import DeltaHTTPServer
from repro.workload.generator import WorkloadSpec, generate_workload

SITE = "www.res.example"


def make_spec(**overrides) -> SiteSpec:
    defaults = dict(name=SITE, products_per_category=3)
    defaults.update(overrides)
    return SiteSpec(**defaults)


def make_server(**kwargs) -> DeltaHTTPServer:
    spec = kwargs.pop("spec", None) or make_spec()
    kwargs.setdefault(
        "config",
        DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
        ),
    )
    return build_server([SyntheticSite(spec)], **kwargs)


class Client:
    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None

    async def get(self, url: str, user: str = "u1"):
        if self.reader is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        self.writer.write(serialize_request(request))
        await self.writer.drain()
        parsed = await asyncio.wait_for(read_response(self.reader), 10.0)
        if not parsed.keep_alive:
            self.close()
        return parsed.response

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.reader = self.writer = None


def page_url(server: DeltaHTTPServer) -> str:
    site = server.gateway.origin.site(SITE)
    return site.url_for(site.all_pages()[0])


async def warm_up(client: Client, url: str, users=("u1", "u2", "u3")) -> None:
    for user in users:
        response = await client.get(url, user=user)
        assert response.status == 200


class TestHealthEndpoint:
    def test_health_reports_ok_over_the_wire(self):
        async def main():
            async with make_server() as server:
                client = Client(*server.address)
                try:
                    await client.get(page_url(server), user="u1")
                    response = await client.get(f"{SITE}/{HEALTH_PATH}")
                finally:
                    client.close()
                assert response.status == 200
                assert response.headers.get("Content-Type") == "application/json"
                payload = json.loads(response.body)
                assert payload["status"] == "ok"
                assert payload["mode"] == "delta"
                assert payload["requests"] >= 1
                assert payload["resilience"]["breaker"]["state"] == CLOSED
                assert payload["engine"]["quarantined"] == []
                assert server.stats.health_checks == 1

        asyncio.run(main())

    def test_health_answers_while_origin_is_down(self):
        """The probe must not block behind the engine lock while workers
        are stuck in origin retry backoff."""
        plan = FaultPlan([FaultRule(kind="error", status=500)], enabled=False)

        async def main():
            async with make_server(
                fault_plan=plan,
                resilience=ResilienceConfig(
                    retries=8, backoff_base=0.2, backoff_cap=0.5,
                    breaker_window=64, breaker_min_calls=50,
                ),
            ) as server:
                url = page_url(server)
                plan.enable()

                async def doomed():
                    client = Client(*server.address)
                    try:
                        return await client.get(url, user="u1")
                    finally:
                        client.close()

                task = asyncio.ensure_future(doomed())
                await asyncio.sleep(0.1)  # the worker is now mid-backoff
                probe = Client(*server.address)
                try:
                    started = asyncio.get_running_loop().time()
                    response = await probe.get(f"{SITE}/{HEALTH_PATH}")
                    elapsed = asyncio.get_running_loop().time() - started
                finally:
                    probe.close()
                plan.disable()
                await task
                assert response.status == 200
                assert elapsed < 0.5, f"health probe blocked {elapsed:.2f}s"

        asyncio.run(main())


class TestDegradation:
    def test_breaker_opens_and_stale_base_is_served(self):
        plan = FaultPlan([FaultRule(kind="error", status=500)], enabled=False)
        resilience = ResilienceConfig(
            retries=0,
            breaker_window=8,
            breaker_min_calls=3,
            breaker_failure_threshold=0.5,
            breaker_cooldown=30.0,  # stays open for the whole test
        )

        async def main():
            async with make_server(fault_plan=plan, resilience=resilience) as server:
                url = page_url(server)
                client = Client(*server.address)
                try:
                    await warm_up(client, url)  # class now has a base-file
                    plan.enable()
                    # Each failed fetch counts; after min_calls the breaker
                    # opens and requests degrade without touching the origin.
                    stale = None
                    for i in range(6):
                        stale = await client.get(url, user=f"d{i}")
                        assert stale.status == 200
                        assert stale.degraded == "stale-base"
                    assert server.resilience.breaker.state == OPEN
                    fetches_at_open = server.gateway.stats.fetches
                    again = await client.get(url, user="d9")
                    assert again.degraded == "stale-base"
                    assert server.gateway.stats.fetches == fetches_at_open
                    # The health endpoint reflects the outage.
                    health = await client.get(f"{SITE}/{HEALTH_PATH}")
                    payload = json.loads(health.body)
                    assert payload["status"] == "degraded"
                    assert payload["resilience"]["breaker"]["state"] == OPEN
                    assert payload["engine"]["stale_served"] >= 1
                finally:
                    client.close()
                assert server.stats.degraded_stale >= 6
                assert server.stats.status_counts.get(500, 0) == 0

        asyncio.run(main())

    def test_breaker_recloses_after_origin_recovers(self):
        plan = FaultPlan([FaultRule(kind="error", status=500)], enabled=False)
        resilience = ResilienceConfig(
            retries=0,
            breaker_window=8,
            breaker_min_calls=3,
            breaker_cooldown=0.2,
            breaker_probes=2,
        )

        async def main():
            async with make_server(fault_plan=plan, resilience=resilience) as server:
                url = page_url(server)
                client = Client(*server.address)
                try:
                    await warm_up(client, url)
                    plan.enable()
                    for i in range(4):
                        await client.get(url, user=f"d{i}")
                    assert server.resilience.breaker.state == OPEN
                    plan.disable()  # origin is healthy again
                    await asyncio.sleep(0.25)  # cooldown elapses
                    # Probe traffic closes the breaker again.
                    for i in range(3):
                        response = await client.get(url, user=f"r{i}")
                        assert response.status == 200
                    assert server.resilience.breaker.state == CLOSED
                    assert server.resilience.breaker.stats.reclosed == 1
                finally:
                    client.close()

        asyncio.run(main())

    def test_plain_mode_answers_502_when_origin_dead(self):
        plan = FaultPlan([FaultRule(kind="error", status=500)])
        resilience = ResilienceConfig(retries=0, breaker_min_calls=3)

        async def main():
            async with make_server(
                mode="plain", fault_plan=plan, resilience=resilience
            ) as server:
                client = Client(*server.address)
                try:
                    response = await client.get(page_url(server), user="u1")
                finally:
                    client.close()
                assert response.status == 502
                assert response.degraded == "origin-unavailable"
                # The raw injected 500 never reached the client.
                assert server.stats.status_counts.get(500, 0) == 0
                assert server.stats.degraded_unavailable == 1

        asyncio.run(main())


class TestLoadgenResilience:
    def _workload(self, requests: int, seed: int = 9):
        return generate_workload(
            [SyntheticSite(make_spec())],
            WorkloadSpec(
                name="resilient",
                requests=requests,
                users=4,
                duration=20.0,
                revisit_bias=0.7,
                seed=seed,
            ),
        )

    def test_retries_recover_503_rejections(self):
        """Overflow 503s (connection slots) are retried with backoff and
        every byte still verifies after recovery."""
        workload = self._workload(requests=40)

        async def main():
            async with make_server(max_connections=2) as server:
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, mode="closed", concurrency=6,
                        retries=10, retry_backoff=0.02, retry_backoff_cap=0.2,
                    )
                )
                return await generator.run(workload.trace), server.stats

        report, stats = asyncio.run(main())
        assert report.completed == 40
        assert report.rejected == 0  # every rejection was retried through
        assert report.errors == 0
        assert report.verify_failures == 0
        assert report.delta_failures == 0
        assert report.retries_by_status.get(503, 0) > 0
        assert report.status_counts.get(503, 0) == report.retries_by_status[503]
        assert stats.connections_rejected > 0

    def test_retries_ride_out_an_origin_error_burst(self):
        """A windowed 100% error burst at startup: clients retry 502s
        until the window passes, then everything completes and verifies."""
        workload = self._workload(requests=12, seed=3)
        plan = FaultPlan([FaultRule(kind="error", status=500, end=0.4)])
        resilience = ResilienceConfig(
            # The burst must not trip the breaker in this test.
            retries=0, breaker_window=1000, breaker_min_calls=1000,
        )

        async def main():
            async with make_server(fault_plan=plan, resilience=resilience) as server:
                plan.arm()
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, mode="closed", concurrency=2,
                        retries=8, retry_backoff=0.1, retry_backoff_cap=0.4,
                    )
                )
                return await generator.run(workload.trace)

        report = asyncio.run(main())
        assert report.completed == 12
        assert report.errors == 0
        assert report.verify_failures == 0
        assert report.retries_by_status.get(502, 0) > 0
        assert report.status_counts.get(500, 0) == 0  # degradation shields 500s

    def test_zero_retries_still_reports_rejections(self):
        workload = self._workload(requests=30, seed=5)

        async def main():
            async with make_server(max_connections=1) as server:
                host, port = server.address
                generator = LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, mode="closed", concurrency=5,
                        retries=0,
                    )
                )
                return await generator.run(workload.trace)

        report = asyncio.run(main())
        assert report.requests == 30
        assert report.completed + report.rejected + report.errors >= 30
        assert not report.retries_by_status
