"""Tests for the worker-pool offload (repro.serve.executor)."""

import asyncio
import threading
import time

import pytest

from repro.delta import apply_delta, make_delta
from repro.serve.executor import KINDS, DeltaExecutor


def test_kinds_validated():
    with pytest.raises(ValueError):
        DeltaExecutor("fibers")
    assert set(KINDS) == {"thread", "process", "sync"}


def test_sync_runs_inline():
    with DeltaExecutor("sync") as executor:
        ran_in = []

        async def main():
            return await executor.run(
                lambda: ran_in.append(threading.current_thread().name) or 42
            )

        assert asyncio.run(main()) == 42
    assert ran_in == [threading.current_thread().name]


def test_thread_runs_off_loop_thread():
    with DeltaExecutor("thread", max_workers=2) as executor:

        async def main():
            return await executor.run(lambda: threading.current_thread().name)

        name = asyncio.run(main())
    assert name != threading.current_thread().name


def test_thread_keeps_loop_responsive():
    """While a worker blocks, the event loop must still make progress."""
    with DeltaExecutor("thread", max_workers=1) as executor:

        async def main():
            ticks = 0
            blocked = asyncio.ensure_future(executor.run(time.sleep, 0.15))
            while not blocked.done():
                await asyncio.sleep(0.01)
                ticks += 1
            return ticks

        assert asyncio.run(main()) >= 5


def test_process_pool_for_picklable_jobs():
    base = b"abcdefgh" * 200
    target = base[:900] + b"XYZ" + base[900:]
    try:
        executor = DeltaExecutor("process", max_workers=1)
    except OSError:
        pytest.skip("process pools unavailable in this environment")
    with executor:

        async def main():
            return await executor.run(make_delta, base, target)

        payload = asyncio.run(main())
    assert apply_delta(payload, base) == target


def test_exceptions_propagate():
    def boom():
        raise RuntimeError("worker exploded")

    with DeltaExecutor("thread") as executor:

        async def main():
            await executor.run(boom)

        with pytest.raises(RuntimeError, match="worker exploded"):
            asyncio.run(main())


def test_kwargs_forwarded():
    def combine(a, b=0):
        return a + b

    with DeltaExecutor("thread") as executor:

        async def main():
            return await executor.run(combine, 1, b=2)

        assert asyncio.run(main()) == 3
