"""Tests for the HTTP/1.1 wire mapping (repro.serve.protocol)."""

import asyncio

import pytest

from repro.http.messages import HEADER_ACCEPT_DELTA, Request, Response
from repro.serve.protocol import (
    ParsedRequest,
    ParsedResponse,
    ProtocolError,
    body_digest,
    digest_matches,
    parse_cookie_header,
    read_request,
    read_response,
    render_cookie_header,
    serialize_request,
    serialize_response,
)


def feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def parse_request(wire: bytes) -> ParsedRequest | None:
    async def run():
        return await read_request(feed(wire))

    return asyncio.run(run())


def parse_response(wire: bytes) -> ParsedResponse:
    async def run():
        return await read_response(feed(wire))

    return asyncio.run(run())


class TestRequestRoundtrip:
    def test_roundtrip_preserves_url_cookies_headers(self):
        request = Request(
            url="www.shop.example/browse?cat=laptops&id=3",
            cookies={"uid": "u7", "theme": "dark"},
            client_id="u7",
        )
        request.headers.set(HEADER_ACCEPT_DELTA, "cls1/2")
        parsed = parse_request(serialize_request(request))
        assert parsed is not None
        back = parsed.request
        assert back.url == request.url
        assert back.method == "GET"
        assert back.cookies == request.cookies
        assert back.client_id == "u7"
        assert back.headers.get(HEADER_ACCEPT_DELTA) == "cls1/2"
        assert parsed.keep_alive
        assert parsed.wire_bytes == len(serialize_request(request))

    def test_connection_close_requested(self):
        request = Request(url="www.s.example/x?id=1")
        parsed = parse_request(serialize_request(request, keep_alive=False))
        assert parsed is not None and not parsed.keep_alive

    def test_anonymous_without_uid_cookie(self):
        parsed = parse_request(b"GET /p?id=1 HTTP/1.1\r\nHost: www.s.example\r\n\r\n")
        assert parsed is not None
        assert parsed.request.client_id == "anonymous"
        assert parsed.request.url == "www.s.example/p?id=1"

    def test_absolute_form_target(self):
        parsed = parse_request(b"GET http://www.s.example/p?id=1 HTTP/1.1\r\n\r\n")
        assert parsed is not None
        assert parsed.request.url == "www.s.example/p?id=1"

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_stray_blank_line_tolerated(self):
        parsed = parse_request(b"\r\nGET / HTTP/1.1\r\nHost: h.example\r\n\r\n")
        assert parsed is not None
        assert parsed.request.url == "h.example/"

    def test_http_10_defaults_to_close(self):
        parsed = parse_request(b"GET / HTTP/1.0\r\nHost: h.example\r\n\r\n")
        assert parsed is not None and not parsed.keep_alive


class TestMalformedRequests:
    @pytest.mark.parametrize(
        "wire",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /x\r\n\r\n",  # missing version
            b"GET /x SPDY/3\r\nHost: h\r\n\r\n",
            b"GET /x HTTP/1.1\r\n\r\n",  # no Host, origin-form
            b"GET x HTTP/1.1\r\nHost: h\r\n\r\n",  # target not /-rooted
            b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nshort",
        ],
    )
    def test_raises_protocol_error(self, wire):
        with pytest.raises(ProtocolError):
            parse_request(wire)

    def test_request_body_consumed_for_framing(self):
        wire = (
            b"POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody"
            b"GET /y HTTP/1.1\r\nHost: h\r\n\r\n"
        )

        async def run():
            reader = feed(wire)
            first = await read_request(reader)
            second = await read_request(reader)
            return first, second

        first, second = asyncio.run(run())
        assert first.request.url == "h/x"
        assert second.request.url == "h/y"


class TestResponseRoundtrip:
    def test_content_length_roundtrip(self):
        response = Response(status=200, body=b"hello world")
        response.headers.set("X-Delta-Base", "cls1/1")
        parsed = parse_response(serialize_response(response))
        assert parsed.response.status == 200
        assert parsed.response.body == b"hello world"
        assert parsed.response.base_file_ref == "cls1/1"
        assert parsed.keep_alive

    def test_chunked_roundtrip(self):
        body = bytes(range(256)) * 300  # several chunks
        wire = serialize_response(Response(status=200, body=body), chunked=True)
        parsed = parse_response(wire)
        assert parsed.response.body == body
        assert b"Transfer-Encoding: chunked" in wire

    def test_close_delimited_body(self):
        wire = b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\ntail bytes"
        parsed = parse_response(wire)
        assert parsed.response.body == b"tail bytes"
        assert not parsed.keep_alive

    def test_cachable_inferred_from_cache_control(self):
        response = Response(status=200, body=b"base")
        response.mark_cachable()
        parsed = parse_response(serialize_response(response))
        assert parsed.response.cachable

    def test_truncated_chunked_raises(self):
        wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab"
        with pytest.raises(ProtocolError):
            parse_response(wire)

    def test_bad_chunk_size_raises(self):
        wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"
        with pytest.raises(ProtocolError):
            parse_response(wire)

    def test_malformed_status_line_raises(self):
        with pytest.raises(ProtocolError):
            parse_response(b"ICY 200 OK\r\n\r\n")
        with pytest.raises(ProtocolError):
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n")


class TestHelpers:
    def test_cookie_roundtrip(self):
        cookies = {"uid": "u1", "cart": "3"}
        assert parse_cookie_header(render_cookie_header(cookies)) == cookies

    def test_cookie_parse_tolerates_junk(self):
        assert parse_cookie_header("uid=u1; ; =x; bare") == {"uid": "u1"}

    def test_body_digest_matches(self):
        body = b"the document"
        assert digest_matches(body_digest(body), body)
        assert not digest_matches(body_digest(body), body + b"!")
        assert not digest_matches(None, body)
