"""Tests for the TCP slow-start transfer model."""

import random

import pytest

from repro.network.link import HIGH_BANDWIDTH, LAN, MODEM_56K, LinkSpec
from repro.network.tcp import mean_transfer_time, slow_start_rounds, transfer_time


class TestLinkSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(name="x", bandwidth_bps=0, rtt=0.1)
        with pytest.raises(ValueError):
            LinkSpec(name="x", bandwidth_bps=1000, rtt=0)
        with pytest.raises(ValueError):
            LinkSpec(name="x", bandwidth_bps=1000, rtt=0.1, initial_cwnd=0)

    def test_bandwidth_delay_product(self):
        link = LinkSpec(name="x", bandwidth_bps=1_460 * 8 * 10, rtt=1.0)
        assert link.bandwidth_delay_segments == pytest.approx(10.0)

    def test_packet_transmission_time(self):
        link = LinkSpec(name="x", bandwidth_bps=1460 * 8, rtt=0.1)
        assert link.packet_transmission_time == pytest.approx(1.0)


class TestSlowStartRounds:
    def test_zero_bytes(self):
        assert slow_start_rounds(0, HIGH_BANDWIDTH) == 0

    def test_single_segment_one_round(self):
        assert slow_start_rounds(100, HIGH_BANDWIDTH) == 1

    def test_rounds_grow_logarithmically(self):
        # initial cwnd 1, doubling: 1+2+4+8+16 = 31 segments in 5 rounds
        mss = HIGH_BANDWIDTH.mss
        assert slow_start_rounds(31 * mss, HIGH_BANDWIDTH) == 5
        assert slow_start_rounds(32 * mss, HIGH_BANDWIDTH) == 6

    def test_paper_ratio_30kb_vs_1kb(self):
        """The paper's Section VI-A argument: ~5x rounds for 30 KB vs 1 KB."""
        large = slow_start_rounds(30 * 1024, HIGH_BANDWIDTH)
        small = slow_start_rounds(1024, HIGH_BANDWIDTH)
        assert small == 1
        assert 4 <= large <= 6


class TestTransferTime:
    def test_monotone_in_size(self):
        for link in (HIGH_BANDWIDTH, MODEM_56K, LAN):
            times = [
                transfer_time(size, link).total
                for size in (0, 1_000, 10_000, 100_000)
            ]
            assert times == sorted(times)

    def test_zero_size_is_setup_only(self):
        breakdown = transfer_time(0, HIGH_BANDWIDTH)
        assert breakdown.total == breakdown.setup
        assert breakdown.rounds == 0

    def test_setup_can_be_excluded(self):
        with_setup = transfer_time(1000, HIGH_BANDWIDTH).total
        without = transfer_time(1000, HIGH_BANDWIDTH, include_setup=False).total
        assert with_setup > without

    def test_modem_transmission_dominates(self):
        breakdown = transfer_time(30 * 1024, MODEM_56K)
        assert breakdown.transmission > 0.5 * breakdown.total

    def test_highbw_rtt_dominates(self):
        breakdown = transfer_time(30 * 1024, HIGH_BANDWIDTH)
        assert breakdown.transmission < 0.2 * breakdown.total

    def test_loss_adds_penalty(self):
        lossy = LinkSpec(
            name="lossy", bandwidth_bps=1_000_000, rtt=0.05, loss_rate=0.5, rto=1.0
        )
        rng = random.Random(1)
        breakdown = transfer_time(50_000, lossy, rng=rng)
        assert breakdown.loss_penalty > 0

    def test_no_rng_means_deterministic(self):
        a = transfer_time(30_000, MODEM_56K).total
        b = transfer_time(30_000, MODEM_56K).total
        assert a == b
        assert transfer_time(30_000, MODEM_56K).loss_penalty == 0


class TestMeanTransferTime:
    def test_lossless_equals_deterministic(self):
        assert mean_transfer_time(10_000, HIGH_BANDWIDTH) == pytest.approx(
            transfer_time(10_000, HIGH_BANDWIDTH).total
        )

    def test_lossy_mean_above_lossless(self):
        assert mean_transfer_time(30 * 1024, MODEM_56K, samples=300) > transfer_time(
            30 * 1024, MODEM_56K
        ).total


class TestPaperRatios:
    def test_modem_latency_ratio_near_10(self):
        """Paper: L1/L2 ≈ 10 for 30 KB vs 1 KB over a 56 Kb/s modem."""
        l1 = mean_transfer_time(30 * 1024, MODEM_56K, samples=400)
        l2 = mean_transfer_time(1024, MODEM_56K, samples=400)
        assert 7 <= l1 / l2 <= 14

    def test_highbw_rounds_ratio_near_5(self):
        ratio = slow_start_rounds(30 * 1024, HIGH_BANDWIDTH) / slow_start_rounds(
            1024, HIGH_BANDWIDTH
        )
        assert 4 <= ratio <= 6
