"""Tests for latency measurement helpers."""

import pytest

from repro.network.latency import LatencyTracker, compare_sizes
from repro.network.link import HIGH_BANDWIDTH, MODEM_56K


class TestCompareSizes:
    def test_ratio_properties(self):
        comparison = compare_sizes(30 * 1024, 1024, MODEM_56K, samples=200)
        assert comparison.latency_large > comparison.latency_small
        assert comparison.latency_ratio > 1
        assert comparison.link == "modem-56k"

    def test_rounds_ratio(self):
        comparison = compare_sizes(30 * 1024, 1024, HIGH_BANDWIDTH)
        assert comparison.rounds_ratio == pytest.approx(5.0)


class TestLatencyTracker:
    def test_record_accumulates(self):
        tracker = LatencyTracker(MODEM_56K)
        latency = tracker.record(10_000)
        assert latency > 0
        assert tracker.count == 1
        assert tracker.total == pytest.approx(latency)

    def test_mean(self):
        tracker = LatencyTracker(HIGH_BANDWIDTH)
        for size in (1000, 2000, 3000):
            tracker.record(size)
        assert tracker.mean == pytest.approx(tracker.total / 3)

    def test_empty_tracker(self):
        tracker = LatencyTracker(MODEM_56K)
        assert tracker.mean == 0.0
        assert tracker.percentile(50) == 0.0

    def test_percentiles_ordered(self):
        tracker = LatencyTracker(MODEM_56K)
        for size in range(1000, 50_000, 2500):
            tracker.record(size)
        assert tracker.percentile(10) <= tracker.percentile(50) <= tracker.percentile(90)

    def test_deterministic_given_seed(self):
        a = LatencyTracker(MODEM_56K, seed=5)
        b = LatencyTracker(MODEM_56K, seed=5)
        sizes = [30_000, 1_000, 20_000]
        assert [a.record(s) for s in sizes] == [b.record(s) for s in sizes]
