"""Tests for the HPP template-splitting baseline."""

import pytest

from repro.baselines.hpp import HPPServer, split_document
from repro.origin import SiteSpec, SyntheticSite, profile_for


def renders_of_page(count: int = 4, page_index: int = 0) -> list[bytes]:
    site = SyntheticSite(
        SiteSpec(
            name="www.hpp.example",
            categories=("news",),
            products_per_category=2,
            header_bytes=2000,
            skeleton_bytes=8000,
            detail_bytes=4000,
        )
    )
    page = site.all_pages()[page_index]
    return [
        site.render(page, 120.0 * i, user_id=f"u{i}", profile=profile_for(f"u{i}"))
        for i in range(count)
    ]


class TestSplitDocument:
    def test_single_render_all_template(self):
        split = split_document([b"hello world"])
        assert split.template == b"hello world"

    def test_identical_renders_all_template(self):
        # non-repetitive prose: identical renders diff to one big COPY
        from repro.origin.text import paragraph, rng_for

        doc = paragraph(rng_for("hpp-static"), 1500).encode()
        split = split_document([doc, doc, doc])
        assert split.template_bytes >= len(doc) * 0.95

    def test_varying_middle_excluded(self):
        prefix = b"<head>" + b"s" * 500 + b"</head>"
        suffix = b"<foot>" + b"t" * 500 + b"</foot>"
        renders = [prefix + f"<dyn>{i}-{i}-{i}</dyn>".encode() * 10 + suffix for i in range(4)]
        split = split_document(renders)
        template = split.template
        assert b"s" * 100 in template
        assert b"t" * 100 in template
        assert b"<dyn>0-0-0</dyn>" not in template

    def test_template_smaller_on_dynamic_pages(self):
        renders = renders_of_page()
        split = split_document(renders)
        assert 0 < split.template_bytes < len(renders[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            split_document([])


class TestHPPServer:
    def _server(self, site):
        def fetch(url, user, now):
            page = site.parse_url(url.split("&sid=")[0] if "&sid=" in url else url)
            return site.render(page, now, user_id=user, profile=profile_for(user))

        return HPPServer(fetch, training_renders=3)

    def test_savings_in_paper_band(self):
        """Douglis et al.: transfers 2-8x smaller than original sizes."""
        site = SyntheticSite(
            SiteSpec(
                name="www.hppsrv.example",
                categories=("news",),
                products_per_category=1,
            )
        )
        server = self._server(site)
        url = site.url_for(site.all_pages()[0])
        for i in range(60):
            server.handle(url, f"u{i % 6}", 60.0 * i)
        assert 2 <= server.stats.reduction_factor <= 12

    def test_training_renders_validated(self):
        with pytest.raises(ValueError):
            HPPServer(lambda u, s, n: b"", training_renders=1)

    def test_direct_bytes_accumulate(self):
        site = SyntheticSite(
            SiteSpec(name="www.hpp2.example", products_per_category=1)
        )
        server = self._server(site)
        url = site.url_for(site.all_pages()[0])
        for i in range(5):
            server.handle(url, "u1", 10.0 * i)
        assert server.stats.requests == 5
        assert server.stats.direct_bytes > server.stats.sent_bytes
