"""Tests for the plain proxy-caching baseline."""

from repro.baselines.plain_proxy import replay_plain_proxy


def make_fetch(static_body=b"S" * 1000, dynamic_size=1000):
    def fetch(url, user, now):
        if url.startswith("static"):
            return static_body
        # dynamic content varies per (user, now); padded to a fixed size so
        # byte shares track request shares
        body = (f"dyn {url} {user} {now} ".encode() * 60)[:dynamic_size]
        return body.ljust(dynamic_size, b"x")

    return fetch


class TestPlainProxy:
    def test_static_urls_cached(self):
        requests = [("static/a", "u1", 0.0)] * 5
        stats = replay_plain_proxy(
            requests, make_fetch(), is_static=lambda u: u.startswith("static")
        )
        assert stats.hits == 4
        assert stats.upstream_bytes == 1000  # fetched once

    def test_dynamic_never_cached(self):
        requests = [("dyn/a", "u1", float(i)) for i in range(5)]
        stats = replay_plain_proxy(
            requests, make_fetch(), is_static=lambda u: False
        )
        assert stats.hits == 0
        assert stats.upstream_bytes == stats.direct_bytes

    def test_mixed_traffic_hit_rate_bounded_by_static_share(self):
        # 40% static, 60% dynamic: the paper's "hit rates usually around 40%"
        requests = []
        for i in range(100):
            if i % 5 < 2:
                requests.append(("static/popular", "u1", float(i)))
            else:
                requests.append((f"dyn/{i}", "u1", float(i)))
        stats = replay_plain_proxy(
            requests, make_fetch(), is_static=lambda u: u.startswith("static")
        )
        assert stats.hit_rate <= 0.4
        assert 0 < stats.byte_savings <= 0.4

    def test_empty_trace(self):
        stats = replay_plain_proxy([], make_fetch(), is_static=lambda u: True)
        assert stats.requests == 0
        assert stats.byte_savings == 0.0
        assert stats.hit_rate == 0.0
