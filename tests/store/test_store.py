"""Tests for the Store orchestrator: chains, eviction, compaction, inspect."""

import pytest

from repro.delta import checksum
from repro.store import Store, StoreError, inspect_state_dir

BASE = b"<html>" + b"shared product page content " * 120 + b"</html>"


def doc(v: int) -> bytes:
    return BASE + f"<p>revision {v}</p>".encode() * (v % 3 + 1)


def seeded_store(tmp_path, versions: int = 10, snapshot_every: int = 4) -> Store:
    store = Store.open(tmp_path / "state", snapshot_every=snapshot_every)
    store.add_class("cls1", "www.s.com", "hint")
    store.add_member("cls1", "www.s.com/a")
    store.add_member("cls1", "www.s.com/b")
    for v in range(1, versions + 1):
        store.commit_base("cls1", v, doc(v))
    return store


def test_chain_bound_and_materialization(tmp_path):
    store = seeded_store(tmp_path, versions=10, snapshot_every=4)
    st = store.class_state("cls1")
    chains = {e.version: (e.encoding, e.chain) for e in st.entries.values()}
    # Full snapshot roots every 4th version: 1, 5, 9 are full.
    assert chains[1] == ("full", 1)
    assert chains[5] == ("full", 1)
    assert chains[9] == ("full", 1)
    assert all(chain <= 4 for _, chain in chains.values())
    for v in range(1, 11):
        assert store.materialize("cls1", v) == doc(v)
    store.close()


def test_snapshot_every_one_stores_all_full(tmp_path):
    store = seeded_store(tmp_path, versions=5, snapshot_every=1)
    st = store.class_state("cls1")
    assert all(e.encoding == "full" for e in st.entries.values())
    store.close()


def test_delta_chains_beat_full_snapshots(tmp_path):
    chained = seeded_store(tmp_path / "k8", versions=12, snapshot_every=8)
    fulls = seeded_store(tmp_path / "k1", versions=12, snapshot_every=1)
    assert chained.live_pack_bytes < fulls.live_pack_bytes
    chained.close()
    fulls.close()


def test_warm_reopen_restores_index(tmp_path):
    store = seeded_store(tmp_path)
    store.close()
    store2 = Store.open(tmp_path / "state")
    assert store2.stats.warm_start
    st = store2.class_state("cls1")
    assert st.members == ["www.s.com/a", "www.s.com/b"]
    assert st.latest == 10
    for v in range(1, 11):
        assert store2.materialize("cls1", v) == doc(v)
    store2.close()


def test_commit_after_reopen_continues_chain(tmp_path):
    store = seeded_store(tmp_path, versions=2, snapshot_every=8)
    store.close()
    store2 = Store.open(tmp_path / "state", snapshot_every=8)
    entry = store2.commit_base("cls1", 3, doc(3))
    # The tip cache is cold after reopen; the parent is materialized from
    # disk and the chain continues instead of re-rooting.
    assert entry.encoding == "delta"
    assert entry.parent == 2
    assert store2.materialize("cls1", 3) == doc(3)
    store2.close()


def test_materialize_unknown_raises(tmp_path):
    store = seeded_store(tmp_path, versions=1)
    with pytest.raises(StoreError):
        store.materialize("cls1", 99)
    with pytest.raises(StoreError):
        store.materialize("nope", 1)
    store.close()


def test_checksum_mismatch_refused(tmp_path):
    """A committed record whose bytes don't match its checksum never serves."""
    store = Store.open(tmp_path / "state")
    store.add_class("cls1", "s", "h")
    store.commit_base("cls1", 1, doc(1), doc_checksum=checksum(b"other bytes"))
    with pytest.raises(StoreError):
        store.materialize("cls1", 1)
    store.close()


def test_evict_history_keeps_latest(tmp_path):
    store = seeded_store(tmp_path, versions=10, snapshot_every=4)
    before = store.live_pack_bytes
    freed = store.evict_history("cls1")
    assert freed > 0
    assert store.live_pack_bytes < before
    st = store.class_state("cls1")
    assert set(st.entries) == {10}
    # Latest was a chain delta; eviction re-rooted it as a full record.
    assert st.entries[10].encoding == "full"
    assert store.materialize("cls1", 10) == doc(10)
    assert store.garbage_bytes > 0
    store.close()
    # Eviction is durable.
    store2 = Store.open(tmp_path / "state")
    assert set(store2.class_state("cls1").entries) == {10}
    assert store2.materialize("cls1", 10) == doc(10)
    store2.close()


def test_release_drops_payloads_durably(tmp_path):
    store = seeded_store(tmp_path, versions=4)
    freed = store.release("cls1")
    assert freed > 0
    assert store.class_state("cls1").latest is None
    store.close()
    store2 = Store.open(tmp_path / "state")
    st = store2.class_state("cls1")
    assert st.latest is None and not st.entries
    assert st.members  # the class itself survives a release
    store2.close()


def test_quarantine_drops_payloads(tmp_path):
    store = seeded_store(tmp_path, versions=3)
    store.quarantine("cls1", cause="integrity")
    assert store.class_state("cls1").latest is None
    store.close()
    store2 = Store.open(tmp_path / "state")
    assert store2.class_state("cls1").latest is None
    store2.close()


def test_compact_reclaims_garbage(tmp_path):
    store = seeded_store(tmp_path, versions=10, snapshot_every=4)
    store.evict_history("cls1")
    assert store.garbage_ratio() > 0.5
    pack_before = store.pack_bytes
    freed = store.compact()
    assert freed > 0
    assert store.pack_bytes < pack_before
    assert store.garbage_bytes == 0
    assert store.snapshot()["generation"] == 2
    assert store.materialize("cls1", 10) == doc(10)
    # Commits continue against the new generation …
    store.commit_base("cls1", 11, doc(11))
    assert store.materialize("cls1", 11) == doc(11)
    store.close()
    # … and the swapped CURRENT pointer survives a reopen.
    store2 = Store.open(tmp_path / "state")
    assert store2.snapshot()["generation"] == 2
    assert store2.materialize("cls1", 11) == doc(11)
    assert store2.class_state("cls1").members == ["www.s.com/a", "www.s.com/b"]
    store2.close()


def test_compact_removes_old_generation_files(tmp_path):
    store = seeded_store(tmp_path)
    store.evict_history("cls1")
    store.compact()
    store.close()
    names = sorted(p.name for p in (tmp_path / "state").iterdir())
    assert names == ["CURRENT", "journal-000002.rjl", "pack-000002.rpk"]


def test_stats_snapshot_shape(tmp_path):
    store = seeded_store(tmp_path, versions=6, snapshot_every=4)
    snap = store.snapshot()
    assert snap["classes"] == 1
    assert snap["commits"] == 6
    assert snap["full_records"] + snap["delta_records"] == 6
    assert snap["max_chain_length"] <= 4
    assert snap["pack_bytes"] > snap["live_pack_bytes"] >= 0
    assert snap["journal_records"] == 9  # 1 class + 2 members + 6 bases
    store.close()


def test_inspect_is_read_only_and_reports_tears(tmp_path):
    store = seeded_store(tmp_path, versions=3)
    store.close()
    state_dir = tmp_path / "state"
    journal = next(state_dir.glob("journal-*.rjl"))
    size = journal.stat().st_size
    with open(journal, "r+b") as fh:
        fh.truncate(size - 2)
    dump = inspect_state_dir(state_dir)
    assert dump["generation"] == 1
    assert dump["journal"]["torn_tail_bytes"] > 0
    assert dump["classes"]["cls1"]["members"] == 2
    # inspect must not repair anything.
    assert journal.stat().st_size == size - 2
    # Recovery (opening the store) then truncates the tail for real.
    store2 = Store.open(state_dir)
    assert store2.stats.journal_truncated_bytes > 0
    store2.close()
    assert journal.stat().st_size < size - 2
