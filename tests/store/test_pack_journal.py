"""Tests for the store's file layers: framing, pack, journal."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.format import (
    FILE_HEADER,
    FRAME_HEADER,
    MAX_FRAME_PAYLOAD,
    StoreFormatError,
    check_header,
    frame_size,
    scan_frames,
)
from repro.store.journal import JOURNAL_MAGIC, Journal, scan_journal
from repro.store.pack import PACK_MAGIC, Pack, PackCorruptionError


# -- framing ----------------------------------------------------------------


def write_frames(payloads):
    import io

    from repro.store.format import write_frame, write_header

    buf = io.BytesIO()
    write_header(buf, b"TST1")
    for payload in payloads:
        write_frame(buf, payload)
    return buf.getvalue()


def test_scan_round_trip():
    payloads = [b"alpha", b"", b"x" * 1000]
    data = write_frames(payloads)
    frames, valid_end = scan_frames(data, FILE_HEADER.size)
    assert [f.payload for f in frames] == payloads
    assert valid_end == len(data)


def test_scan_stops_at_torn_tail():
    data = write_frames([b"alpha", b"beta"])
    for cut in range(FILE_HEADER.size, len(data)):
        frames, valid_end = scan_frames(data[:cut], FILE_HEADER.size)
        # Never claims more than what was fully written, never raises.
        assert valid_end <= cut
        for frame in frames:
            assert frame.end <= cut


def test_scan_stops_at_corruption():
    data = bytearray(write_frames([b"alpha", b"beta", b"gamma"]))
    second = FILE_HEADER.size + frame_size(5)
    data[second + FRAME_HEADER.size] ^= 0xFF  # flip a payload byte of "beta"
    frames, valid_end = scan_frames(bytes(data), FILE_HEADER.size)
    assert [f.payload for f in frames] == [b"alpha"]
    assert valid_end == second


def test_scan_rejects_implausible_length():
    data = write_frames([b"ok"]) + FRAME_HEADER.pack(MAX_FRAME_PAYLOAD + 1, 0)
    frames, valid_end = scan_frames(data, FILE_HEADER.size)
    assert [f.payload for f in frames] == [b"ok"]


def test_check_header_rejects_wrong_magic_and_version():
    with pytest.raises(StoreFormatError):
        check_header(b"", b"TST1")
    with pytest.raises(StoreFormatError):
        check_header(FILE_HEADER.pack(b"BAD1", 1), b"TST1")
    with pytest.raises(StoreFormatError):
        check_header(FILE_HEADER.pack(b"TST1", 99), b"TST1")


@settings(max_examples=50, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=200), max_size=8),
    cut=st.integers(min_value=0, max_value=2000),
)
def test_scan_any_truncation_yields_frame_prefix(payloads, cut):
    """Truncating at ANY byte offset yields a prefix of the written frames."""
    data = write_frames(payloads)
    cut = min(cut + FILE_HEADER.size, len(data))
    frames, valid_end = scan_frames(data[:cut], FILE_HEADER.size)
    assert [f.payload for f in frames] == payloads[: len(frames)]
    assert valid_end <= cut


# -- pack -------------------------------------------------------------------


def test_pack_append_read_round_trip(tmp_path):
    pack = Pack(tmp_path / "p.rpk")
    locs = [pack.append(body, sync=False) for body in (b"one", b"", b"three" * 99)]
    for (offset, length), body in zip(locs, (b"one", b"", b"three" * 99)):
        assert pack.read(offset, length) == body
    pack.close()
    # Reopen appends after the existing end.
    pack2 = Pack(tmp_path / "p.rpk")
    offset, length = pack2.append(b"four", sync=True)
    assert offset == locs[-1][0] + locs[-1][1]
    assert pack2.read(offset, length) == b"four"
    pack2.close()


def test_pack_read_detects_corruption(tmp_path):
    path = tmp_path / "p.rpk"
    pack = Pack(path)
    offset, length = pack.append(b"payload-bytes", sync=True)
    pack.close()
    data = bytearray(path.read_bytes())
    data[offset + FRAME_HEADER.size] ^= 0x01
    path.write_bytes(bytes(data))
    pack2 = Pack(path)
    with pytest.raises(PackCorruptionError):
        pack2.read(offset, length)
    assert not pack2.verify(offset, length)
    pack2.close()


def test_pack_rejects_foreign_file(tmp_path):
    path = tmp_path / "p.rpk"
    path.write_bytes(b"this is not a pack file at all")
    with pytest.raises(StoreFormatError):
        Pack(path)


# -- journal ----------------------------------------------------------------


def test_journal_round_trip(tmp_path):
    path = tmp_path / "j.rjl"
    journal = Journal(path)
    records = [
        {"type": "class_created", "class_id": "cls1", "server": "s", "hint": "h"},
        {"type": "member_added", "class_id": "cls1", "url": "s/u"},
    ]
    for record in records:
        journal.append(record, sync=False)
    journal.close()
    scanned, valid_end, size = scan_journal(path)
    assert [record for _, record in scanned] == records
    assert valid_end == size == os.path.getsize(path)


def test_journal_survives_reopen_append(tmp_path):
    path = tmp_path / "j.rjl"
    journal = Journal(path)
    journal.append({"type": "a"}, sync=True)
    journal.close()
    journal2 = Journal(path)
    journal2.append({"type": "b"}, sync=True)
    journal2.close()
    scanned, _, _ = scan_journal(path)
    assert [record["type"] for _, record in scanned] == ["a", "b"]


def test_journal_valid_json_but_not_object_ends_prefix(tmp_path):
    """A CRC-valid frame that is not a JSON record object ends the prefix."""
    from repro.store.format import write_frame

    path = tmp_path / "j.rjl"
    journal = Journal(path)
    journal.append({"type": "a"}, sync=False)
    write_frame(journal._fh, b"[1, 2, 3]")  # valid frame, not a record
    journal.append({"type": "b"}, sync=True)
    journal.close()
    scanned, valid_end, size = scan_journal(path)
    assert [record["type"] for _, record in scanned] == ["a"]
    assert valid_end < size  # everything from the bad frame on is distrusted
