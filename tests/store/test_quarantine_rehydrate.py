"""Quarantine → re-adoption → restart: the healed base is what survives.

Completes the store-hooks quarantine story from
``test_warm_restart.test_quarantined_class_restarts_baseless``: a
quarantine wipes the persisted chain, but once the class heals (the
next fetch re-adopts a fresh base), that *re-adopted* base is committed
back to the store — and a warm restart rehydrates to it, byte for byte,
delta-servable again.
"""

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.http.messages import HEADER_DELTA, Request, Response, base_ref
from repro.store import PersistentStoreHooks, Store

BASE = b"<html>" + b"shared page shell " * 120 + b"</html>"
URL = "www.s.com/app/page-0"


class ScriptedOrigin:
    def __init__(self):
        self.docs: dict[str, bytes] = {}

    def __call__(self, request: Request, now: float) -> Response:
        return Response(status=200, body=self.docs[request.url])


def build_engine(tmp_path) -> tuple[DeltaServer, ScriptedOrigin]:
    origin = ScriptedOrigin()
    store = Store.open(tmp_path / "state", snapshot_every=4)
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=False)
    )
    engine = DeltaServer(origin, config, store_hooks=PersistentStoreHooks(store))
    return engine, origin


def test_quarantined_then_readopted_base_rehydrates(tmp_path):
    engine, origin = build_engine(tmp_path)
    origin.docs[URL] = BASE + b"<p>original</p>"
    assert engine.handle(Request(url=URL), now=0.0).status == 200
    cls = engine.class_of(URL)
    original_base = cls.distributable_base

    # Quarantine (suspect bytes), then heal: the next fetch re-adopts a
    # *changed* document as the new base.
    with cls.lock:
        engine._quarantine(cls, cause="integrity")
    origin.docs[URL] = BASE + b"<p>re-adopted after quarantine</p>"
    assert engine.handle(Request(url=URL), now=5.0).status == 200
    readopted = cls.distributable_base
    readopted_version = cls.version
    assert readopted is not None
    assert readopted != original_base
    assert engine.stats.quarantine_recoveries >= 1
    engine.close()

    # Warm restart: the shard rehydrates to the re-adopted base — not
    # the pre-quarantine bytes, not baseless.
    restarted, origin2 = build_engine(tmp_path)
    origin2.docs[URL] = origin.docs[URL]
    restored = restarted.class_of(URL)
    assert restored is not None
    assert not restored.quarantined
    assert restored.distributable_base == readopted
    assert restored.version == readopted_version

    # And it is immediately delta-servable: a client holding the
    # re-adopted base gets a delta against it on the first request.
    ref = base_ref(restored.class_id, restored.version)
    origin2.docs[URL] = BASE + b"<p>updated after restart</p>"
    request = Request(url=URL)
    request.headers.set("X-Accept-Delta", ref)
    response = restarted.handle(request, now=10.0)
    assert response.headers.get(HEADER_DELTA) == ref
    restarted.close()


def test_release_without_readoption_stays_baseless(tmp_path):
    """A quarantine with no healing traffic must not resurrect old bytes."""
    engine, origin = build_engine(tmp_path)
    origin.docs[URL] = BASE + b"<p>original</p>"
    engine.handle(Request(url=URL), now=0.0)
    cls = engine.class_of(URL)
    with cls.lock:
        engine._quarantine(cls, cause="integrity")
    engine.close()  # no traffic between quarantine and shutdown

    restarted, _ = build_engine(tmp_path)
    restored = restarted.class_of(URL)
    assert restored is not None
    assert restored.distributable_base is None
    restarted.close()
