"""Fault-injection tests for the store's crash-safety contract.

The contract under test (the commit protocol's whole point):

* tearing the journal or the pack at ANY byte offset — the torn-tail
  shape a crash mid-commit leaves — recovers to a *consistent prefix*
  of the commit history;
* flipping any byte — bit rot, torn sector rewrites — recovers to a
  consistent prefix ending before the damage;
* every base-file version that survives recovery materializes to its
  exact original bytes (checksums verified); a torn or corrupted
  version is *gone*, never served wrong.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import Store

BASE = b"<html>" + b"catalog page boilerplate " * 150 + b"</html>"


def doc(class_id: str, v: int) -> bytes:
    return BASE + f"<p>{class_id} revision {v}</p>".encode() * (v % 4 + 1)


def build_state(tmp_path, *, classes=2, versions=6, snapshot_every=3):
    """A store with a few classes and version chains; returns the truth."""
    store = Store.open(tmp_path / "state", snapshot_every=snapshot_every)
    truth: dict[str, dict[int, bytes]] = {}
    for c in range(1, classes + 1):
        class_id = f"cls{c}"
        store.add_class(class_id, "www.s.com", f"hint{c}")
        store.add_member(class_id, f"www.s.com/{c}/a")
        truth[class_id] = {}
        for v in range(1, versions + 1):
            body = doc(class_id, v)
            store.commit_base(class_id, v, body)
            truth[class_id][v] = body
    store.close()
    return truth


def assert_consistent_prefix(state_dir, truth):
    """Recovery invariants; returns total versions that survived."""
    store = Store.open(state_dir)
    survived = 0
    for class_id, versions in truth.items():
        st_ = store.class_state(class_id)
        if st_ is None:
            continue  # the class record itself was cut — consistent
        recovered = sorted(st_.entries)
        # Per class the surviving versions are a PREFIX of the commit
        # order (commits are strictly in version order per class here).
        assert recovered == list(range(1, len(recovered) + 1)), recovered
        if st_.latest is not None:
            assert st_.latest == recovered[-1]
        for v in recovered:
            # Byte-identical or refused — never torn bytes.
            assert store.materialize(class_id, v) == versions[v]
            survived += 1
    # Recovery leaves files a fresh open accepts verbatim (idempotent).
    stats_first = store.snapshot()
    store.close()
    store2 = Store.open(state_dir)
    again = store2.snapshot()
    assert again["journal_records"] == stats_first["journal_records"]
    assert again["journal_truncated_bytes"] == 0
    assert again["pack_truncated_bytes"] == 0
    store2.close()
    return survived


@settings(max_examples=30, deadline=None)
@given(cut_back=st.integers(min_value=0, max_value=4000), data=st.data())
def test_truncation_at_any_offset_recovers_consistent_prefix(
    tmp_path_factory, cut_back, data
):
    """Chop journal or pack anywhere: recovery yields a consistent prefix."""
    tmp_path = tmp_path_factory.mktemp("crash")
    truth = build_state(tmp_path)
    state_dir = tmp_path / "state"
    target = data.draw(st.sampled_from(["journal", "pack"]))
    path = next(state_dir.glob(f"{target}-*"))
    size = path.stat().st_size
    cut = max(size - cut_back, 0)
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    assert_consistent_prefix(state_dir, truth)


@settings(max_examples=30, deadline=None)
@given(position=st.floats(min_value=0.0, max_value=1.0), data=st.data())
def test_corruption_at_any_offset_recovers_consistent_prefix(
    tmp_path_factory, position, data
):
    """Flip any byte in journal or pack: damage is detected, prefix served."""
    tmp_path = tmp_path_factory.mktemp("rot")
    truth = build_state(tmp_path)
    state_dir = tmp_path / "state"
    target = data.draw(st.sampled_from(["journal", "pack"]))
    path = next(state_dir.glob(f"{target}-*"))
    raw = bytearray(path.read_bytes())
    index = min(int(position * len(raw)), len(raw) - 1)
    raw[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    path.write_bytes(bytes(raw))
    assert_consistent_prefix(state_dir, truth)


def test_crash_between_pack_and_journal_write(tmp_path):
    """The exact mid-commit crash: pack frame durable, journal record lost.

    Recovery must truncate the orphan pack tail and keep every earlier
    commit intact.
    """
    truth = build_state(tmp_path, classes=1, versions=3)
    state_dir = tmp_path / "state"
    store = Store.open(state_dir)
    # Simulate the torn commit: payload reaches the pack, the journal
    # record does not (crash between the two appends).
    store._pack.append(b"orphan payload bytes", sync=True)
    store._pack.close()
    store._journal.close()

    recovered = Store.open(state_dir)
    assert recovered.stats.pack_truncated_bytes > 0
    for v, body in truth["cls1"].items():
        assert recovered.materialize("cls1", v) == body
    # The store keeps accepting commits after the repair.
    recovered.commit_base("cls1", 4, doc("cls1", 4))
    assert recovered.materialize("cls1", 4) == doc("cls1", 4)
    recovered.close()


def test_empty_and_header_only_files(tmp_path):
    state_dir = tmp_path / "state"
    store = Store.open(state_dir)
    store.close()
    # Header-only files: a store that never committed anything.
    store2 = Store.open(state_dir)
    assert not store2.stats.warm_start
    store2.close()
    # Zero-byte files (crash before the first header fsync).
    for path in state_dir.glob("*.r*"):
        path.write_bytes(b"")
    store3 = Store.open(state_dir)
    assert store3.classes() == []
    store3.add_class("cls1", "s", "h")
    store3.commit_base("cls1", 1, doc("cls1", 1))
    store3.close()


def test_destroyed_pack_header_keeps_journal_prefix(tmp_path):
    """An unreadable pack header invalidates every payload; the journal
    prefix *before the first base record* still survives — cls1's class
    and membership records precede its first commit, so its skeleton
    comes back; everything journaled after that point is (conservatively)
    distrusted."""
    build_state(tmp_path, classes=2, versions=2)
    state_dir = tmp_path / "state"
    pack = next(state_dir.glob("pack-*"))
    pack.write_bytes(b"garbage that is not a pack header")
    store = Store.open(state_dir)
    st_ = store.class_state("cls1")
    assert st_ is not None
    assert st_.latest is None  # no payload survives …
    assert st_.members  # … but the pre-commit membership does
    # The store is writable again after the repair.
    store.commit_base("cls1", 3, doc("cls1", 3))
    assert store.materialize("cls1", 3) == doc("cls1", 3)
    store.close()
