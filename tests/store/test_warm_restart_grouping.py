"""Grouping state across restarts: popularity counters and sketches.

The restart here is deliberately unclean — the first engine is abandoned
without ``close()``, like a SIGKILL.  Journal appends flush to the OS on
every write (see :meth:`repro.store.journal.Journal.append`), so a fresh
``Store.open`` against the same directory sees exactly what a process
restart after a kill would see.
"""

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.core.sketch import MinHashSketcher
from repro.http.messages import Request, Response
from repro.store import PersistentStoreHooks, Store
from repro.store.hooks import HIT_JOURNAL_STRIDE

SHELL = b"<html>" + b"shared page shell " * 160 + b"</html>"


def family_doc(family: int, tail: bytes = b"") -> bytes:
    """Per-family page: families share nothing, so each gets its own class."""
    return (
        b"<html>"
        + f"family {family} skeleton {family * 7919} ".encode() * 120
        + tail
        + b"</html>"
    )


class ScriptedOrigin:
    def __init__(self):
        self.docs: dict[str, bytes] = {}

    def __call__(self, request: Request, now: float) -> Response:
        return Response(status=200, body=self.docs[request.url])


def build_engine(tmp_path, origin) -> DeltaServer:
    store = Store.open(tmp_path / "state", snapshot_every=4)
    config = DeltaServerConfig(anonymization=AnonymizationConfig(enabled=False))
    return DeltaServer(origin, config, store_hooks=PersistentStoreHooks(store))


def serve(engine, origin, url, doc, now=0.0):
    origin.docs[url] = doc
    response = engine.handle(Request(url=url), now=now)
    assert response.status == 200
    return response


def test_popularity_survives_kill_restart(tmp_path):
    """Regression: hit counts used to restart at zero, silently discarding
    the popular-first probe ordering (heuristic 4)."""
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    hot, cold = "www.s.com/hot/page", "www.s.com/cold/page"
    serve(engine, origin, hot, SHELL + b"<p>hot</p>")
    serve(engine, origin, cold, b"totally unrelated tiny page " * 40)
    hot_requests = 2 * HIT_JOURNAL_STRIDE + 7  # crosses two checkpoints
    for i in range(hot_requests - 1):
        serve(engine, origin, hot, SHELL + b"<p>hot</p>", now=float(i))
    hot_id = engine.class_of(hot).class_id
    cold_id = engine.class_of(cold).class_id
    assert engine.class_of(hot).stats.hits == hot_requests
    # SIGKILL: no close(), no flush of anything beyond what already ran.
    del engine

    restarted = build_engine(tmp_path, origin)
    hot_cls, cold_cls = restarted.class_of(hot), restarted.class_of(cold)
    assert hot_cls.class_id == hot_id and cold_cls.class_id == cold_id
    # The last stride checkpoint survived; at most stride-1 hits are lost.
    assert hot_cls.stats.hits == 2 * HIT_JOURNAL_STRIDE
    assert hot_cls.popularity > cold_cls.popularity
    # And the restored popularity actually orders the probes.
    grouper = restarted.grouper
    order = grouper._probe_order(
        [cold_cls, hot_cls], grouper._shard_rng(("www.s.com", "hot"))
    )
    assert order[0] is hot_cls
    restarted.close()


def test_sketches_survive_kill_restart_byte_identically(tmp_path):
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    urls = [f"www.s.com/cat{i}/page" for i in range(5)]
    for i, url in enumerate(urls):
        serve(engine, origin, url, family_doc(i))
    before = {
        cls.class_id: cls.base_signature for cls in engine.grouper.classes
    }
    assert len(before) == 5
    assert all(sig is not None for sig in before.values())
    del engine  # SIGKILL

    restarted = build_engine(tmp_path, origin)
    after = {
        cls.class_id: cls.base_signature for cls in restarted.grouper.classes
    }
    assert after == before
    # The signatures came off disk, not from re-sketching the bases.
    for class_id in before:
        state = restarted.store_hooks.store.class_state(class_id)
        assert state.sketch is not None
        assert tuple(state.sketch) == before[class_id]
    restarted.close()


def test_restart_does_not_resketch_persisted_bases(tmp_path, monkeypatch):
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    for i in range(4):
        serve(engine, origin, f"www.s.com/cat{i}/page", family_doc(i))
    del engine  # SIGKILL

    calls = []
    original = MinHashSketcher.signature

    def counting(self, document):
        calls.append(len(document))
        return original(self, document)

    monkeypatch.setattr(MinHashSketcher, "signature", counting)
    restarted = build_engine(tmp_path, origin)
    assert restarted.rehydrated_classes == 4
    assert calls == []  # every signature was restored from the journal
    assert all(
        cls.base_signature is not None for cls in restarted.grouper.classes
    )
    restarted.close()


def test_restored_sketch_groups_fresh_hint_urls(tmp_path):
    """Post-restart, a new session-style URL with near-duplicate content
    joins its pre-restart class through the restored LSH index."""
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    url = "www.s.com/catalog/page"
    doc = SHELL + b"<p>catalog body</p>" * 30
    serve(engine, origin, url, doc)
    class_id = engine.class_of(url).class_id
    del engine  # SIGKILL

    restarted = build_engine(tmp_path, origin)
    fresh = "www.s.com/session-7f3a/catalog-page"
    serve(restarted, origin, fresh, doc + b"<p>session tail</p>", now=50.0)
    joined = restarted.class_of(fresh)
    assert joined is not None and joined.class_id == class_id
    assert restarted.grouper.stats.sketch_hits >= 1
    restarted.close()


def test_hits_and_sketch_survive_compaction(tmp_path):
    """The snapshot/compaction path carries popularity and sketches too."""
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    url = "www.s.com/app/page"
    for i in range(HIT_JOURNAL_STRIDE + 2):
        serve(engine, origin, url, SHELL + b"<p>app</p>", now=float(i))
    cls = engine.class_of(url)
    signature = cls.base_signature
    store = engine.store_hooks.store
    store.compact()
    engine.close()

    reopened = Store.open(tmp_path / "state")
    state = reopened.class_state(cls.class_id)
    assert state.hits == HIT_JOURNAL_STRIDE
    assert tuple(state.sketch) == signature
    reopened.close()
