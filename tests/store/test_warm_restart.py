"""Warm-restart round trips: engine state rebuilt from the store."""

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.http.messages import HEADER_DELTA, HEADER_DELTA_BASE, Request, Response, base_ref
from repro.store import PersistentStoreHooks, Store

BASE = b"<html>" + b"shared page shell " * 120 + b"</html>"


class ScriptedOrigin:
    """Origin whose documents are set per URL (and counted)."""

    def __init__(self):
        self.docs: dict[str, bytes] = {}
        self.fetches = 0

    def __call__(self, request: Request, now: float) -> Response:
        self.fetches += 1
        return Response(status=200, body=self.docs[request.url])


def engine_config() -> DeltaServerConfig:
    # Anonymization off: adoption promotes immediately, so every request
    # sequence deterministically produces committed base versions.
    return DeltaServerConfig(anonymization=AnonymizationConfig(enabled=False))


def build_engine(tmp_path, origin) -> DeltaServer:
    store = Store.open(tmp_path / "state", snapshot_every=4)
    return DeltaServer(
        origin, engine_config(), store_hooks=PersistentStoreHooks(store)
    )


def serve_corpus(engine, origin, urls):
    for i, url in enumerate(urls):
        origin.docs[url] = BASE + f"<p>item {i}</p>".encode()
        assert engine.handle(Request(url=url), now=float(i)).status == 200


def test_round_trip_byte_identical_bases_and_memberships(tmp_path):
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    urls = [f"www.s.com/app/page-{i}" for i in range(8)]
    serve_corpus(engine, origin, urls)
    before = {
        cls.class_id: (cls.version, cls.distributable_base, sorted(cls.members))
        for cls in engine.grouper.classes
    }
    assert before, "corpus produced no classes"
    engine.close()

    restarted = build_engine(tmp_path, origin)
    assert restarted.rehydrated_classes == len(before)
    after = {
        cls.class_id: (cls.version, cls.distributable_base, sorted(cls.members))
        for cls in restarted.grouper.classes
    }
    assert after == before  # versions, bytes, memberships — all identical
    for url in urls:
        assert restarted.class_of(url) is not None
    health = restarted.health_snapshot()
    assert health["warm_start"] is True
    assert health["rehydrated_classes"] == len(before)
    assert health["store"]["classes"] == len(before)
    restarted.close()


def test_restart_serves_deltas_without_refetching_bases(tmp_path):
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    url = "www.s.com/app/page-0"
    serve_corpus(engine, origin, [url])
    cls = engine.class_of(url)
    ref = base_ref(cls.class_id, cls.version)
    engine.close()

    restarted = build_engine(tmp_path, origin)
    fetches_before = origin.fetches
    # A client that kept its pre-restart base-file gets a delta on its
    # very first post-restart request (one origin render, no base rebuild).
    origin.docs[url] = BASE + b"<p>item 0, updated after restart</p>"
    request = Request(url=url)
    request.headers.set("X-Accept-Delta", ref)
    response = restarted.handle(request, now=100.0)
    assert response.headers.get(HEADER_DELTA) == ref
    assert origin.fetches == fetches_before + 1
    restarted.close()


def test_new_classes_after_restart_get_fresh_ids(tmp_path):
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    serve_corpus(engine, origin, ["www.s.com/app/page-0"])
    old_ids = {cls.class_id for cls in engine.grouper.classes}
    engine.close()

    restarted = build_engine(tmp_path, origin)
    url = "www.other.com/completely/different"
    origin.docs[url] = b"x" * 600
    restarted.handle(Request(url=url), now=50.0)
    new_ids = {cls.class_id for cls in restarted.grouper.classes} - old_ids
    assert new_ids and not (new_ids & old_ids)
    restarted.close()


def test_quarantined_class_restarts_baseless(tmp_path):
    """A quarantine wipes the persisted chain: restart cannot resurrect it."""
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    url = "www.s.com/app/page-0"
    serve_corpus(engine, origin, [url])
    cls = engine.class_of(url)
    with cls.lock:
        engine._quarantine(cls, cause="integrity")
    engine.close()

    restarted = build_engine(tmp_path, origin)
    restored = restarted.class_of(url)
    assert restored is not None  # membership survives …
    assert restored.distributable_base is None  # … the suspect bytes do not
    # The class heals exactly like a live quarantine: next fetch re-adopts.
    response = restarted.handle(Request(url=url), now=10.0)
    assert response.status == 200
    assert restored.distributable_base is not None
    restarted.close()


def test_version_history_materializes_after_restart(tmp_path):
    """Every committed version — not just the latest — survives restarts."""
    origin = ScriptedOrigin()
    engine = build_engine(tmp_path, origin)
    url = "www.s.com/app/page-0"
    serve_corpus(engine, origin, [url])
    cls = engine.class_of(url)
    # Force rebases to run the version counter up (each commits a version).
    history = {}
    for v in range(2, 6):
        doc = BASE + f"<p>rebased generation {v}</p>".encode()
        with cls.lock:
            cls.adopt_base(doc, owner_user=None, now=float(v))
            engine.store_hooks.base_committed(
                cls.class_id, cls.version, doc, cls.distributable_checksum
            )
        history[cls.version] = doc
    engine.close()

    store = Store.open(tmp_path / "state", snapshot_every=4)
    for version, doc in history.items():
        assert store.materialize(cls.class_id, version) == doc
    store.close()


def test_serialized_engine_mode_also_persists(tmp_path):
    origin = ScriptedOrigin()
    store = Store.open(tmp_path / "state", snapshot_every=4)
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=False), engine_mode="serialized"
    )
    engine = DeltaServer(
        origin, config, store_hooks=PersistentStoreHooks(store)
    )
    url = "www.s.com/app/page-0"
    origin.docs[url] = BASE + b"<p>serialized</p>"
    engine.handle(Request(url=url), now=0.0)
    engine.close()

    store2 = Store.open(tmp_path / "state")
    assert store2.stats.warm_start
    assert store2.class_state("cls1").latest == 1
    store2.close()


def test_no_store_hooks_is_a_true_noop(tmp_path):
    """Without hooks the engine works exactly as before (cold every time)."""
    origin = ScriptedOrigin()
    engine = DeltaServer(origin, engine_config())
    url = "www.s.com/app/page-0"
    origin.docs[url] = BASE + b"<p>plain</p>"
    assert engine.handle(Request(url=url), now=0.0).status == 200
    assert engine.rehydrated_classes == 0
    assert engine.health_snapshot()["store"] is None
    engine.close()  # no-op, must not raise
