"""Property-based tests for URL partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.url.parts import heuristic_partition, split_server

# URL-safe path/query fragments
segment = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_.", min_size=1, max_size=12
)
server = st.builds(lambda a, b: f"www.{a}.{b}", segment, segment)


@settings(max_examples=100, deadline=None)
@given(server=server, path=st.lists(segment, max_size=4), query=st.lists(
    st.tuples(segment, segment), max_size=3
))
def test_partition_total_and_consistent(server, path, query):
    """Any well-formed URL partitions without error, and the server-part is
    recovered exactly."""
    url = server
    if path or query:
        url += "/" + "/".join(path)
    if query:
        url += "?" + "&".join(f"{k}={v}" for k, v in query)
    parts = heuristic_partition(url)
    assert parts.server == server
    # hint and rest are substrings of the original URL (no invention)
    if parts.hint and "=" not in parts.hint:
        assert parts.hint in url
    assert parts.key[0] == server


@settings(max_examples=100, deadline=None)
@given(server=server, tail=st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_./?&=", max_size=30
))
def test_split_server_roundtrip(server, tail):
    url = f"{server}/{tail}"
    got_server, remainder = split_server(url)
    assert got_server == server
    assert url == f"{got_server}/{remainder}"


@settings(max_examples=50, deadline=None)
@given(server=server, tail=st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_./?&=", max_size=30
))
def test_schemes_are_transparent(server, tail):
    bare = f"{server}/{tail}"
    for scheme in ("http://", "https://"):
        assert split_server(scheme + bare) == split_server(bare)
        assert heuristic_partition(scheme + bare) == heuristic_partition(bare)
