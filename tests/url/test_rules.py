"""Tests for admin-provided URL partitioning rules."""

import pytest

from repro.url.parts import URLParts
from repro.url.rules import HintRule, RuleBook


class TestHintRule:
    def test_requires_hint_group(self):
        with pytest.raises(ValueError):
            HintRule(r"(?P<other>\w+)")

    def test_hint_and_rest_groups(self):
        rule = HintRule(r"(?P<hint>[^/?]+)\?(?P<rest>.*)")
        parts = rule.apply("www.foo.com", "laptops?id=100")
        assert parts == URLParts("www.foo.com", "laptops", "id=100")

    def test_rest_defaults_to_tail(self):
        rule = HintRule(r"shop/(?P<hint>\w+)/")
        parts = rule.apply("www.foo.com", "shop/laptops/item42")
        assert parts == URLParts("www.foo.com", "laptops", "item42")

    def test_no_match_returns_none(self):
        rule = HintRule(r"shop/(?P<hint>\w+)")
        assert rule.apply("www.foo.com", "blog/post/1") is None


class TestRuleBook:
    def test_rule_applied_for_matching_server(self):
        book = RuleBook()
        book.add_rule("www.foo.com", r"catalog/(?P<hint>\w+)\?(?P<rest>.*)")
        parts = book.partition("www.foo.com/catalog/laptops?id=9")
        assert parts == URLParts("www.foo.com", "laptops", "id=9")

    def test_falls_back_to_heuristic_when_no_rules(self):
        book = RuleBook()
        parts = book.partition("www.bar.com/laptops?id=100")
        assert parts == URLParts("www.bar.com", "laptops", "id=100")

    def test_falls_back_when_rules_do_not_match(self):
        book = RuleBook()
        book.add_rule("www.foo.com", r"catalog/(?P<hint>\w+)")
        parts = book.partition("www.foo.com/laptops?id=100")
        assert parts == URLParts("www.foo.com", "laptops", "id=100")

    def test_rules_tried_in_order(self):
        book = RuleBook()
        book.add_rule("www.foo.com", r"(?P<hint>first)/")
        book.add_rule("www.foo.com", r"(?P<hint>\w+)/")
        parts = book.partition("www.foo.com/first/x")
        assert parts.hint == "first"

    def test_rules_scoped_per_server(self):
        book = RuleBook()
        book.add_rule("www.foo.com", r"x/(?P<hint>\w+)")
        parts = book.partition("www.other.com/x/abc")
        # other.com has no rules: heuristic takes first segment
        assert parts.hint == "x"

    def test_rules_for(self):
        book = RuleBook()
        book.add_rule("www.foo.com", r"(?P<hint>\w+)")
        assert len(book.rules_for("www.foo.com")) == 1
        assert book.rules_for("www.none.com") == []
