"""Tests for URL partitioning — including the exact Table I examples."""

import pytest

from repro.url.parts import URLParts, heuristic_partition, split_server


class TestSplitServer:
    def test_bare_url(self):
        assert split_server("www.foo.com/laptops?id=100") == (
            "www.foo.com",
            "laptops?id=100",
        )

    def test_http_scheme_stripped(self):
        assert split_server("http://www.foo.com/x") == ("www.foo.com", "x")

    def test_https_scheme_stripped(self):
        assert split_server("https://www.foo.com/x") == ("www.foo.com", "x")

    def test_no_path(self):
        assert split_server("www.foo.com") == ("www.foo.com", "")

    def test_empty_server_rejected(self):
        with pytest.raises(ValueError):
            split_server("/path/only")


class TestTableOne:
    """The three rows of paper Table I, verbatim."""

    def test_path_query_style(self):
        parts = heuristic_partition("www.foo.com/laptops?id=100")
        assert parts == URLParts("www.foo.com", "laptops", "id=100")

    def test_query_only_style(self):
        parts = heuristic_partition("www.foo.com/?dept=laptops&id=100")
        assert parts == URLParts("www.foo.com", "dept=laptops", "id=100")

    def test_path_only_style(self):
        parts = heuristic_partition("www.foo.com/laptops/100")
        assert parts == URLParts("www.foo.com", "laptops", "100")


class TestHeuristicPartition:
    def test_deep_path(self):
        parts = heuristic_partition("www.foo.com/a/b/c?q=1")
        assert parts.hint == "a"
        assert parts.rest == "b/c&q=1"

    def test_root_url(self):
        parts = heuristic_partition("www.foo.com/")
        assert parts == URLParts("www.foo.com", "", "")

    def test_query_single_param(self):
        parts = heuristic_partition("www.foo.com/?page=home")
        assert parts == URLParts("www.foo.com", "page=home", "")

    def test_key_property(self):
        parts = heuristic_partition("www.foo.com/laptops?id=1")
        assert parts.key == ("www.foo.com", "laptops")

    def test_different_servers_different_keys(self):
        a = heuristic_partition("www.a.com/x?id=1")
        b = heuristic_partition("www.b.com/x?id=1")
        assert a.key != b.key
