"""Section VI-B — performance of the grouping mechanism.

The workload uses 2002-style *session URLs*: every logged-in (user, page)
pair is a distinct URL-request, hence a distinct "dynamic document" in the
paper's counting.  Only the grouping search — URL hints plus the light
differ — can discover that they are variants of the same logical page.

Paper claims reproduced here:

* requests are grouped "after a couple of tries" (well-structured site,
  admin regex rules);
* the number of produced groups is 10-100x smaller than the number of
  dynamic documents;
* "no noticeable reduction on the bandwidth and latency savings" versus
  classless delta-encoding (one base per document), while storing far
  fewer base-files.
"""

from _util import emit, once, scaled

from repro.core import AnonymizationConfig, DeltaServerConfig, GroupingConfig
from repro.metrics import fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import Simulation, SimulationConfig
from repro.url import RuleBook
from repro.workload import WorkloadSpec, generate_workload

#: coarse hint: the category only (Table I's style) — several classes per hint
CATEGORY_HINT = r"(?P<hint>[^/?]+)\?(?P<rest>.*)"
#: fine hint: category + product id ("proper regular expressions" for this
#: site) — the hint pins down the logical page, the session token is rest
PAGE_HINT = r"(?P<hint>[^/?]+\?id=\d+)(?:&(?P<rest>.*))?$"



def make_site() -> SyntheticSite:
    return SyntheticSite(
        SiteSpec(
            name="www.grp.example",
            categories=("laptops", "desktops"),
            products_per_category=5,
            dynamic_bytes=2200,
            personal_bytes=1000,
        )
    )


def replay(grouping: GroupingConfig, anonymization: AnonymizationConfig,
           requests: int, users: int = 20, hint_pattern: str = PAGE_HINT):
    site = make_site()
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, hint_pattern)
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name="grouping",
            requests=requests,
            users=users,
            duration=3 * 3600.0,
            revisit_bias=0.7,
            zipf_alpha=0.9,
            logged_in_fraction=1.0,
            session_urls=True,
        ),
    )
    config = SimulationConfig(
        verify=False,
        delta=DeltaServerConfig(grouping=grouping, anonymization=anonymization),
    )
    simulation = Simulation([site], config, rulebook=rulebook)
    return simulation, simulation.run(workload)


def bench_grouping_efficiency(benchmark):
    def run_both():
        results = {}
        for label, pattern in (("page hint", PAGE_HINT), ("category hint", CATEGORY_HINT)):
            results[label] = replay(
                GroupingConfig(),
                AnonymizationConfig(documents=3, min_count=1),
                requests=scaled(4000),
                hint_pattern=pattern,
            )
        return results

    results = once(benchmark, run_both)
    rows = []
    for label, (simulation, report) in results.items():
        grouper = simulation.server.grouper
        documents = report.distinct_documents  # distinct session URLs
        rows.append(
            [
                label,
                documents,
                report.classes,
                f"{documents / report.classes:.1f}",
                grouper.stats.matched,
                f"{grouper.stats.mean_tries:.2f}",
                fmt_pct(report.bandwidth.savings),
            ]
        )
    emit(
        "grouping_efficiency",
        render_table(
            [
                "admin regex",
                "documents",
                "classes",
                "docs/class",
                "matched",
                "mean tries",
                "savings",
            ],
            rows,
            title="Section VI-B: grouping (documents = distinct URL-requests)",
        ),
    )
    fine_sim, fine_report = results["page hint"]
    # paper: grouped "after a couple of tries" with proper regexes
    assert fine_sim.server.grouper.stats.matched > 0
    assert fine_sim.server.grouper.stats.mean_tries <= 2.5
    # paper: 10-100x fewer groups than documents
    assert fine_report.distinct_documents / fine_report.classes >= 10


def bench_grouping_savings_unchanged(benchmark):
    """Class-based sharing vs classless (one base per document).

    With session URLs, a vanishing match threshold degenerates to classic
    delta-encoding: every (user, page) URL gets its own class and base-file
    — the scalable-storage problem the paper set out to fix.  The claim to
    reproduce: the shared-base scheme gives up (almost) no savings while
    storing an order of magnitude fewer base-files.
    """

    def both():
        shared = replay(
            GroupingConfig(),
            AnonymizationConfig(documents=3, min_count=1),
            requests=scaled(2500),
            users=15,
        )
        # Classless: no sharing, so base-files are per-user and private —
        # anonymization is unnecessary by construction.
        classless = replay(
            GroupingConfig(match_threshold=0.001),
            AnonymizationConfig(enabled=False),
            requests=scaled(2500),
            users=15,
        )
        return shared, classless

    (s_sim, s_report), (c_sim, c_report) = once(benchmark, both)
    rows = [
        [
            "class-based (shared base-files)",
            s_report.classes,
            f"{s_report.class_storage_bytes / 1024:.0f} KB",
            fmt_pct(s_report.bandwidth.savings),
        ],
        [
            "classless (base per document)",
            c_report.classes,
            f"{c_report.class_storage_bytes / 1024:.0f} KB",
            fmt_pct(c_report.bandwidth.savings),
        ],
    ]
    emit(
        "grouping_savings_unchanged",
        render_table(
            ["configuration", "classes", "server base storage", "savings"],
            rows,
            title="class-based vs classless delta-encoding",
        ),
    )
    # "No noticeable reduction on the bandwidth ... savings" …
    assert s_report.bandwidth.savings > c_report.bandwidth.savings - 0.05
    # … while the server stores far fewer base-files.
    assert c_report.class_storage_bytes > 5 * s_report.class_storage_bytes
