"""Section VI-C live — plain vs delta serving over real loopback sockets.

The other capacity benchmark (``bench_capacity.py``) regenerates the
paper's numbers from the calibrated cost model; this one actually runs
the :mod:`repro.serve` stack — asyncio listener, HTTP/1.1 wire, worker
pool, the 255-connection ceiling — and replays the same trace against
``mode=plain`` and ``mode=delta`` servers with the closed-loop load
generator, verifying every byte client-side.

Two readings come out of it:

* **live loopback throughput** — requests/s and latency percentiles the
  stack sustains on this machine.  The paper's ordering (plain faster in
  raw req/s: 175-180 vs ~130, a 1.35x gap) holds qualitatively; our gap
  is wider because a pure-Python differ costs more relative to a
  pure-Python origin render than Vdelta did relative to Apache.
* **modeled modem capacity at the connection ceiling** — the paper's
  actual headline is that small responses release connection slots
  quickly, so the delta configuration sustains 500+ concurrent modem
  clients against plain Apache's 255.  We take each mode's *measured
  mean on-wire document response* from the live run, model its 56K-modem
  hold time, and compute how many requests/s 255 slots can carry: the
  ordering flips in delta's favour, reproducing Fig. 8's shape.
"""

import asyncio

from _util import emit, once, scale_factor, scaled

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.metrics import render_table
from repro.network import MODEM_56K
from repro.network.tcp import transfer_time
from repro.origin import SiteSpec, SyntheticSite
from repro.serve import PAPER_CONNECTION_LIMIT, LoadGenConfig, LoadGenerator, build_server
from repro.workload import WorkloadSpec, generate_workload

SITE = "www.live.example"
CONCURRENCY = 8


def make_site() -> SyntheticSite:
    return SyntheticSite(SiteSpec(name=SITE, products_per_category=5))


def make_trace():
    return generate_workload(
        [make_site()],
        WorkloadSpec(
            name="serve-capacity",
            requests=scaled(600),
            users=24,
            duration=120.0,
            revisit_bias=0.6,
            seed=42,
        ),
    ).trace


async def _measure(mode: str, trace):
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=3, min_count=1)
    )
    server = build_server(
        [make_site()],
        mode=mode,
        config=config,
        max_connections=PAPER_CONNECTION_LIMIT,
    )
    async with server:
        host, port = server.address
        generator = LoadGenerator(
            LoadGenConfig(host=host, port=port, mode="closed", concurrency=CONCURRENCY)
        )
        if mode == "delta":
            # Warm-up pass: form classes, drive anonymization to READY,
            # and seed the client-side base cache — the steady state the
            # paper measures.  The second pass is the measurement.
            await generator.run(trace)
        return await generator.run(trace)


def run_mode(mode: str, trace):
    return asyncio.run(_measure(mode, trace))


def modem_capacity_rps(mean_wire_bytes: float) -> tuple[float, float]:
    """(hold seconds, conn-limited req/s) for one response on a 56K modem."""
    hold = transfer_time(int(mean_wire_bytes), MODEM_56K).total
    return hold, PAPER_CONNECTION_LIMIT / hold if hold > 0 else float("inf")


def bench_live_capacity(benchmark):
    trace = make_trace()

    def experiment():
        plain = run_mode("plain", trace)
        delta = run_mode("delta", trace)
        return plain, delta

    plain, delta = once(benchmark, experiment)

    plain_hold, plain_cap = modem_capacity_rps(plain.mean_document_wire_bytes)
    delta_hold, delta_cap = modem_capacity_rps(delta.mean_document_wire_bytes)

    rows = []
    for label, report, hold, cap in (
        ("plain", plain, plain_hold, plain_cap),
        ("delta", delta, delta_hold, delta_cap),
    ):
        rows.append(
            [
                label,
                f"{report.rps:.0f}",
                f"{report.latency_ms(50):.1f}",
                f"{report.latency_ms(99):.1f}",
                f"{report.mean_document_wire_bytes / 1024:.1f} KB",
                f"{report.deltas} / {report.fulls}",
                f"{hold:.2f} s",
                f"{cap:.0f}",
            ]
        )
    table = render_table(
        [
            "mode",
            "live req/s",
            "p50 ms",
            "p99 ms",
            "mean doc wire",
            "deltas / fulls",
            "modem hold",
            f"modem req/s @ {PAPER_CONNECTION_LIMIT} conns",
        ],
        rows,
        title=(
            "live serving capacity over loopback sockets "
            f"(closed loop, {CONCURRENCY} workers, {len(trace)} requests; "
            "paper: plain 175-180 req/s vs delta ~130, but delta sustains "
            "500+ modem connections)"
        ),
    )
    emit("serve_capacity", table)

    # Correctness first: every response verified client-side in both modes.
    assert plain.verify_failures == 0 and delta.verify_failures == 0
    assert plain.errors == 0 and delta.errors == 0
    assert delta.deltas > 0, "delta mode never served a delta"
    # Bandwidth: delta mode moves fewer document bytes on the wire.
    assert delta.document_wire_bytes < plain.document_wire_bytes
    # Raw throughput ordering (paper: moderate loss; ours is larger since
    # the pure-Python differ is expensive relative to the origin render).
    assert plain.rps > delta.rps > 0.02 * plain.rps
    if scale_factor() >= 0.5:
        # The quantitative claims need enough requests for anonymization
        # to ready the hot classes and deltas to dominate the mix.
        assert delta.document_wire_bytes < 0.7 * plain.document_wire_bytes
        # The paper's headline: at the connection ceiling, small responses
        # release slots quickly — delta sustains more modem clients.
        assert delta_cap > plain_cap
