"""Baseline comparison — the paper's introduction, quantified.

Three ways to handle the same dynamic-traffic trace:

* **plain proxy-caching** — dynamic documents are uncachable; nothing is
  saved on them (the paper's "hit rates are usually around 40 %" applies
  to mixed traffic; on purely dynamic traffic the proxy is useless);
* **HPP template-splitting** (Douglis et al., paper's [6]) — "2 to 8 times
  smaller" transfers;
* **class-based delta-encoding** (this paper) — "less efficient ...
  delta-encoding exploits more redundancy than this scheme".

The workload is the regime the paper is actually about: personalized
session URLs (one URL-request per (user, page) pair) over a catalog that
revises hourly.  HPP's handicaps are structural there: its template is
keyed by URL, so every user-session URL trains and stores its *own*
template (the per-document state blow-up class-based grouping exists to
avoid), and the template is fixed at training time, so catalog revisions
permanently migrate the detail block into the per-request bindings, while
the delta-server just rebases.
"""

from _util import emit, once, scale_factor, scaled

from repro.baselines.hpp import HPPServer
from repro.baselines.plain_proxy import replay_plain_proxy
from repro.core import AnonymizationConfig, BaseFileConfig, DeltaServerConfig
from repro.http.messages import Request
from repro.metrics import fmt_factor, fmt_pct, render_table
from repro.origin import OriginServer, SiteSpec, SyntheticSite
from repro.simulation import Simulation, SimulationConfig
from repro.workload import WorkloadSpec, generate_workload


def make_site() -> SyntheticSite:
    # The site edits its catalog hourly (detail_revision_seconds): the slow
    # structural drift that separates the two schemes.  HPP's template is
    # fixed at training time, so every revision permanently moves the
    # detail block into the per-request bindings; the delta-server simply
    # rebases onto a post-revision snapshot.
    return SyntheticSite(
        SiteSpec(
            name="www.base.example",
            categories=("news",),
            products_per_category=4,
            header_bytes=5000,
            skeleton_bytes=22000,
            detail_bytes=12000,
            dynamic_bytes=2200,
            personal_bytes=1000,
            detail_revision_seconds=3600.0,
        )
    )


def make_workload(site: SyntheticSite):
    return generate_workload(
        [site],
        WorkloadSpec(
            name="baselines",
            requests=scaled(2500),
            users=20,
            duration=4 * 3600.0,
            revisit_bias=0.75,
            zipf_alpha=1.0,
            session_urls=True,
            logged_in_fraction=1.0,
        ),
    )


def bench_baseline_comparison(benchmark):
    def run_all():
        site = make_site()
        workload = make_workload(site)
        trace = [(r.url, r.user, r.timestamp) for r in workload.trace]

        origin = OriginServer([site])

        def fetch(url: str, user: str, now: float) -> bytes:
            request = Request(url=url, cookies={"uid": user}, client_id=user)
            return origin.handle(request, now).body

        # 1. plain proxy: every document here is dynamic -> no savings
        plain = replay_plain_proxy(trace, fetch, is_static=lambda url: False)

        # 2. HPP template splitting
        hpp = HPPServer(fetch, training_renders=3)
        for url, user, now in trace:
            hpp.handle(url, user, now)

        # 3. class-based delta-encoding (fresh identical workload), tuned
        # for a drifting site: aggressive sampling keeps the candidate
        # store on the current content generation, and deltas above 20 %
        # of the document trigger the Section IV basic-rebase recovery.
        config = SimulationConfig(
            verify=False,
            delta=DeltaServerConfig(
                anonymization=AnonymizationConfig(documents=3, min_count=1),
                base_file=BaseFileConfig(
                    sample_probability=0.4,
                    basic_rebase_ratio=0.2,
                    rebase_timeout=900.0,
                ),
            ),
        )
        delta_report = Simulation([site], config).run(make_workload(site))
        return plain, hpp, delta_report

    plain, hpp, delta_report = once(benchmark, run_all)
    bw = delta_report.bandwidth
    # server-side state each scheme must keep to operate
    hpp_state = sum(len(split.reference) for split in hpp._splits.values())
    delta_state = delta_report.class_storage_bytes
    rows = [
        [
            "plain proxy-caching",
            fmt_pct(plain.byte_savings),
            fmt_factor(1 / max(1 - plain.byte_savings, 1e-9)),
            "0 KB",
            "paper: ~0 on dynamic traffic",
        ],
        [
            "HPP template-splitting [6]",
            fmt_pct(hpp.stats.savings),
            fmt_factor(hpp.stats.reduction_factor),
            f"{hpp_state // 1024} KB ({len(hpp._splits)} templates)",
            "paper: 2-8x smaller",
        ],
        [
            "class-based delta-encoding",
            fmt_pct(bw.savings),
            fmt_factor(bw.reduction_factor),
            f"{delta_state // 1024} KB ({delta_report.classes} classes)",
            "paper: 20-30x smaller",
        ],
    ]
    emit(
        "baseline_comparison",
        render_table(
            ["scheme", "savings", "reduction", "server state", "paper's claim"],
            rows,
            title=(
                "introduction narrative: personalized session-URL traffic, "
                "hourly catalog revisions"
            ),
        ),
    )
    assert plain.byte_savings == 0.0
    assert hpp.stats.reduction_factor >= 1.5
    assert bw.reduction_factor >= 1.5
    # Class-based grouping shares one base across every user's session
    # URLs; HPP must keep per-document templates — the storage blow-up the
    # paper's scheme exists to avoid.  This is the robust, scale-free win.
    assert delta_state < 0.5 * hpp_state
    # Reproduction note (recorded in EXPERIMENTS.md): our HPP baseline is
    # deliberately idealized — differ-derived chunk-level templates and
    # zlib-compressed bindings, neither of which 1997 HPP had — and on
    # per-request bytes it is competitive with class-based delta-encoding.
    # The paper's 2-8x figure describes HPP as published; the 20-30x
    # delta-encoding figure is reproduced in Table II.  What separates the
    # schemes structurally is the per-document server state above and
    # drift adaptivity (rebases vs a fixed template), not steady-state
    # bytes on stable content.
