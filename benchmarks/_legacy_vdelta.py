"""Frozen pre-streaming-kernel delta encoder — the bench baseline.

This is a verbatim snapshot of the encode path as it stood before the
zero-copy streaming kernel rewrite: per-position ``bytes``-keyed chunk
hashing, a ``candidates[-max_candidates:]`` list copy per probe,
slice-allocating match extension, an intermediate ``list[Instruction]``,
separate ``coalesce``/``optimize_runs`` passes, and a final serialization
pass over the instruction objects.

``bench_delta_kernels.py`` times this baseline against the live kernel and
asserts the two produce *byte-identical* wire output — the rewrite is a
mechanical-sympathy change, never a format or match-quality change.  Keep
this file frozen; it is the measuring stick, not production code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.delta.instructions import Add, Copy, Instruction, Run

_DEFAULT_MAX_CHAIN = 64
_GOOD_ENOUGH_MATCH = 2048

MAGIC = b"CBD1"
_OP_ADD = 0x00
_OP_COPY = 0x01
_OP_RUN = 0x02
MIN_RUN = 24


def _write_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _target_length(instructions: Iterable[Instruction]) -> int:
    total = 0
    for instr in instructions:
        if isinstance(instr, Copy):
            total += instr.length
        elif isinstance(instr, Run):
            total += instr.length
        else:
            total += len(instr.data)
    return total


def legacy_encode_delta(
    instructions: list[Instruction], base_length: int, target_checksum: int
) -> bytes:
    """The pre-rewrite serializer: one pass over instruction objects."""
    out = bytearray(MAGIC)
    _write_varint(_target_length(instructions), out)
    _write_varint(base_length, out)
    out += target_checksum.to_bytes(4, "big")
    for instr in instructions:
        if isinstance(instr, Add):
            out.append(_OP_ADD)
            _write_varint(len(instr.data), out)
            out += instr.data
        elif isinstance(instr, Run):
            out.append(_OP_RUN)
            out.append(instr.byte)
            _write_varint(instr.length, out)
        else:
            out.append(_OP_COPY)
            _write_varint(instr.offset, out)
            _write_varint(instr.length, out)
    return bytes(out)


def _coalesce(instructions: Iterable[Instruction]) -> Iterator[Instruction]:
    pending: Instruction | None = None
    for instr in instructions:
        if pending is None:
            pending = instr
            continue
        if isinstance(pending, Add) and isinstance(instr, Add):
            pending = Add(pending.data + instr.data)
        elif (
            isinstance(pending, Copy)
            and isinstance(instr, Copy)
            and pending.offset + pending.length == instr.offset
        ):
            pending = Copy(pending.offset, pending.length + instr.length)
        elif (
            isinstance(pending, Run)
            and isinstance(instr, Run)
            and pending.byte == instr.byte
        ):
            pending = Run(pending.byte, pending.length + instr.length)
        else:
            yield pending
            pending = instr
    if pending is not None:
        yield pending


def _optimize_runs(
    instructions: Iterable[Instruction], min_run: int = MIN_RUN
) -> Iterator[Instruction]:
    """Pre-rewrite per-byte run extraction."""
    for instr in instructions:
        if not isinstance(instr, Add) or len(instr.data) < min_run:
            yield instr
            continue
        data = instr.data
        start = 0
        i = 0
        n = len(data)
        while i < n:
            j = i + 1
            while j < n and data[j] == data[i]:
                j += 1
            if j - i >= min_run:
                if i > start:
                    yield Add(data[start:i])
                yield Run(data[i], j - i)
                start = j
            i = j
        if start < n:
            yield Add(data[start:])


def _extend_match(
    base: bytes, target: bytes, cand: int, pos: int, start: int, max_len: int
) -> int:
    length = start
    step = 16
    while length < max_len:
        window = min(step, max_len - length)
        if (
            base[cand + length : cand + length + window]
            == target[pos + length : pos + length + window]
        ):
            length += window
            step = min(step * 4, 16384)
            continue
        lo, hi = 0, window
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if (
                base[cand + length : cand + length + mid]
                == target[pos + length : pos + length + mid]
            ):
                lo = mid
            else:
                hi = mid - 1
        length += lo
        break
    return length


class LegacyBaseIndex:
    """Pre-rewrite index: position chains keyed by 4-byte ``bytes`` slices."""

    __slots__ = ("base", "chunk_size", "step", "_table", "max_chain")

    def __init__(
        self,
        base: bytes,
        chunk_size: int = 4,
        step: int = 1,
        max_chain: int = _DEFAULT_MAX_CHAIN,
    ) -> None:
        self.base = base
        self.chunk_size = chunk_size
        self.step = step
        self.max_chain = max_chain
        table: dict[bytes, list[int]] = {}
        for pos in range(0, len(base) - chunk_size + 1, step):
            key = base[pos : pos + chunk_size]
            chain = table.setdefault(key, [])
            if len(chain) < max_chain:
                chain.append(pos)
        self._table = table

    def candidates(self, key: bytes) -> list[int]:
        return self._table.get(key, [])

    def __len__(self) -> int:
        return len(self._table)


@dataclass(slots=True)
class LegacyVdeltaEncoder:
    """Pre-rewrite greedy scan producing an intermediate instruction list."""

    chunk_size: int = 4
    min_match: int = 8
    backward: bool = True
    step: int = 1
    max_candidates: int = 8
    max_chain: int = field(default=_DEFAULT_MAX_CHAIN)

    def index(self, base: bytes) -> LegacyBaseIndex:
        return LegacyBaseIndex(
            base, chunk_size=self.chunk_size, step=self.step, max_chain=self.max_chain
        )

    def encode_instructions(
        self, index: LegacyBaseIndex, target: bytes
    ) -> list[Instruction]:
        base = index.base
        chunk = self.chunk_size
        out: list[Instruction] = []
        literal_start = 0
        pos = 0
        n = len(target)

        while pos + chunk <= n:
            key = target[pos : pos + chunk]
            candidates = index.candidates(key)
            if not candidates:
                pos += 1
                continue
            best_off, best_len = self._best_match(base, target, pos, candidates)
            if best_len < self.min_match:
                pos += 1
                continue
            if self.backward:
                back = self._extend_backward(
                    base, target, best_off, pos, literal_start
                )
                best_off -= back
                pos -= back
                best_len += back
            if pos > literal_start:
                out.append(Add(target[literal_start:pos]))
            out.append(Copy(best_off, best_len))
            pos += best_len
            literal_start = pos

        if literal_start < n:
            out.append(Add(target[literal_start:]))

        return list(_optimize_runs(_coalesce(out)))

    def encode_wire(
        self, index: LegacyBaseIndex, target: bytes, target_checksum: int
    ) -> bytes:
        """The pre-rewrite server hot path: scan, then serialize."""
        instructions = self.encode_instructions(index, target)
        return legacy_encode_delta(instructions, len(index.base), target_checksum)

    def _best_match(
        self, base: bytes, target: bytes, pos: int, candidates: list[int]
    ) -> tuple[int, int]:
        best_off = -1
        best_len = 0
        n_base = len(base)
        n_target = len(target)
        chunk = self.chunk_size
        probe_len = min(max(chunk, self.min_match), n_target - pos)
        probe = target[pos : pos + probe_len]
        for cand in reversed(candidates[-self.max_candidates :]):
            if base[cand : cand + probe_len] != probe:
                continue
            max_len = min(n_base - cand, n_target - pos)
            length = _extend_match(base, target, cand, pos, probe_len, max_len)
            if length > best_len:
                best_len = length
                best_off = cand
                if best_len >= _GOOD_ENOUGH_MATCH:
                    break
        return best_off, best_len

    @staticmethod
    def _extend_backward(
        base: bytes, target: bytes, base_off: int, target_pos: int, literal_start: int
    ) -> int:
        back = 0
        while (
            base_off - back > 0
            and target_pos - back > literal_start
            and base[base_off - back - 1] == target[target_pos - back - 1]
        ):
            back += 1
        return back
