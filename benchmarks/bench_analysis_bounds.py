"""Sections IV & V — the paper's closed-form bounds, regenerated.

Section IV worked example: R = 10^5, p = 10^-2, K = 10 gives N = 1000
candidates and P_error <= 8·10^-11.

Section V worked example: p = 0.01, N = 10, M = 5 gives an i.i.d. bound of
4.7·10^-7 against an exact error probability of 2.4·10^-8; the decaying
model tightens the bound to (Ne/M)^M · p^(M(M+1)/2).
"""

from _util import emit

from repro.analysis import (
    decaying_bound,
    exact_iid,
    expected_candidates,
    iid_bound,
    monte_carlo_iid,
    p_error_bound,
    simulate_best_kept,
)
from repro.metrics import render_table


def bench_section4_bound(benchmark):
    """Base-file selection error bound, paper example plus K/N sweep."""
    n = int(expected_candidates(100_000, 0.01))
    paper_value = benchmark(lambda: p_error_bound(n, 10))
    assert paper_value <= 8e-11

    rows = [["paper example (N=1000, K=10)", "<= 8e-11", f"{paper_value:.2e}"]]
    for k in (4, 6, 8, 10, 12):
        rows.append([f"N=1000, K={k}", "-", f"{p_error_bound(1000, k):.2e}"])
    for n_sweep in (100, 1000, 10_000):
        rows.append([f"N={n_sweep}, K=10", "-", f"{p_error_bound(n_sweep, 10):.2e}"])
    emit(
        "section4_bound",
        render_table(
            ["configuration", "paper", "computed"],
            rows,
            title="Section IV: P_error bound for the randomized algorithm",
        ),
    )


def bench_section4_montecarlo(benchmark):
    """Empirical check: the store-K/evict-worst scheme picks near-optimal
    base-files on synthetic clustered documents."""
    result = benchmark.pedantic(
        lambda: simulate_best_kept(candidates=80, capacity=8, trials=100, seed=9),
        rounds=1,
        iterations=1,
    )
    emit(
        "section4_montecarlo",
        f"store-K/evict-worst over 80 candidates, K=8, 100 trials:\n"
        f"  exact-best kept: {result.best_kept_fraction:.1%}\n"
        f"  mean quality vs offline optimum: {result.mean_quality_ratio:.3f} "
        f"(1.0 = optimal)",
    )
    assert result.mean_quality_ratio < 1.3


def bench_section5_bounds(benchmark):
    """Privacy bounds: paper example and (M, N) sweep."""
    bound = benchmark(lambda: iid_bound(10, 5, 0.01))
    exact = exact_iid(10, 5, 0.01)
    monte = monte_carlo_iid(10, 2, 0.05, trials=200_000)

    rows = [
        [
            "paper example (N=10, M=5, p=0.01)",
            "4.7e-7",
            f"{bound:.2e}",
            "2.4e-8",
            f"{exact:.2e}",
        ]
    ]
    for m, n in ((2, 5), (4, 8), (4, 12)):  # Table IV's anonymization levels
        rows.append(
            [
                f"N={n}, M={m}, p=0.01",
                "-",
                f"{iid_bound(n, m, 0.01):.2e}",
                "-",
                f"{exact_iid(n, m, 0.01):.2e}",
            ]
        )
    emit(
        "section5_bounds",
        render_table(
            ["configuration", "paper bound", "computed bound", "paper exact", "exact"],
            rows,
            title="Section V: probability of private data surviving anonymization",
        )
        + (
            f"\n\nmonte-carlo sanity (N=10, M=2, p=0.05): "
            f"{monte:.5f} vs exact {exact_iid(10, 2, 0.05):.5f}"
        )
        + (
            f"\ndecaying-model bound for the paper example: "
            f"{decaying_bound(10, 5, 0.01):.2e}"
        ),
    )
    assert abs(bound - 4.7e-7) / 4.7e-7 < 0.05
    assert abs(exact - 2.4e-8) / 2.4e-8 < 0.05
    assert abs(monte - exact_iid(10, 2, 0.05)) < 0.005
