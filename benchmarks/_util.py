"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Tables
are printed (visible with ``pytest -s``) and also written to
``benchmarks/results/<name>.txt`` so the numbers survive the run; the
EXPERIMENTS.md paper-vs-measured log is compiled from those files.

``REPRO_BENCH_SCALE`` (float, default 1.0) scales trace sizes down for
quick iteration: ``REPRO_BENCH_SCALE=0.1 pytest benchmarks/ ...`` replays
one tenth of each trace.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def scale_factor() -> float:
    """Trace-size multiplier from the REPRO_BENCH_SCALE env var."""
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(scale, 0.001)


def scaled(requests: int) -> int:
    """Scale a paper request count by REPRO_BENCH_SCALE (min 50)."""
    return max(int(requests * scale_factor()), 50)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    sys.stdout.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def once(benchmark, func):
    """Run an expensive experiment exactly once under pytest-benchmark.

    Whole-trace replays are minutes long; calibrated multi-round timing is
    neither feasible nor meaningful for them.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
