"""Grouping at scale: sketch/LSH candidate index vs the same-server scan.

Section III's search procedure considers *every* same-server class when a
URL's hint matches nothing — and even its popular-first ordering sorts
the whole class list per request.  On a session-heavy site (a constant
stream of fresh, hint-less URLs) that is the scaling wall: each unmatched
session URL both pays an O(classes) search *and* mints a new singleton
class, making the next search slower.

This benchmark replays an identical synthetic workload — ``--urls``
distinct URLs over two servers, each URL's document drawn from a family
that shares a page skeleton, a configurable fraction of URLs wearing
session-style (unique, useless) hints — through two groupers that differ
only in ``GroupingConfig.policy``:

* ``scan`` — the paper's literal procedure (the parity baseline);
* ``sketch`` — the MinHash/LSH candidate index (:mod:`repro.core.sketch`)
  narrows the candidate set in O(1) before any light estimate runs.

Measured per arm: classify throughput (URLs/s), classes created, mean
probes per request, and total delta bytes saved — ``len(document) −
light-delta vs the final class base`` summed over *joined* URLs only (a
class's first request is served in full, so baseline churn singletons
earn nothing).  Gates on the full run: sketch throughput ≥ 10× scan, and
sketch savings ≥ 95% of scan savings (it typically saves far more — the
scan rarely finds the right class among thousands within its probe
budget).  ``--smoke`` (10k URLs) gates parity only.

Results land in ``benchmarks/results/BENCH_grouping.json``.  Run::

    python benchmarks/bench_grouping_scale.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_...py` directly
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.base_file import FirstResponsePolicy
from repro.core.classes import DocumentClass
from repro.core.config import AnonymizationConfig, GroupingConfig
from repro.core.grouping import Grouper
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder
from repro.url.rules import RuleBook

DEFAULT_URLS = 100_000
SMOKE_URLS = 10_000
SERVERS = 2
FAMILIES_PER_SERVER = 1_500
SMOKE_FAMILIES_PER_SERVER = 150
SESSION_FRACTION = 0.30  # URLs with a unique, hint-less-in-practice path
SKELETON_BYTES = 1_600
TAIL_BYTES = 200
THROUGHPUT_GATE = 10.0  # sketch classify throughput vs scan (full run)
PARITY_GATE = 0.95  # sketch delta-bytes-saved vs scan


def build_workload(
    urls: int, families_per_server: int, seed: int
) -> tuple[list[tuple[str, int, bool]], list[bytes], list[bytes]]:
    """Deterministic request stream over a two-server synthetic site.

    Returns ``(requests, skeletons, tails)`` where each request is
    ``(url, family_index, sessiony)``; the document for request ``n`` is
    ``skeletons[family_index] + tails[n]`` (assembled in the replay loop,
    identically for both arms).  Families are striped across the two
    servers; session URLs get a fresh first path segment, so the hint
    heuristic extracts a never-seen hint and candidate selection must
    work from content alone.
    """
    rng = random.Random(seed)
    total_families = SERVERS * families_per_server
    skeletons = [
        random.Random(seed * 1_000_003 + f).randbytes(SKELETON_BYTES)
        for f in range(total_families)
    ]
    requests: list[tuple[str, int, bool]] = []
    tails: list[bytes] = []
    for n in range(urls):
        family = rng.randrange(total_families)
        server = f"www.s{family % SERVERS}.example"
        sessiony = rng.random() < SESSION_FRACTION
        if sessiony:
            url = f"{server}/sess-{n:07d}/f{family}"
        else:
            url = f"{server}/f{family}?item={n}"
        requests.append((url, family, sessiony))
        tails.append(random.Random(seed * 7 + n).randbytes(TAIL_BYTES))
    return requests, skeletons, tails


def make_grouper(policy: str, estimator: LightEstimator) -> Grouper:
    encoder = VdeltaEncoder()
    counter = iter(range(1, 10_000_000))

    def factory(server: str, hint: str) -> DocumentClass:
        return DocumentClass(
            class_id=f"c{next(counter)}",
            server=server,
            hint=hint,
            anonymization=AnonymizationConfig(enabled=False),
            policy=FirstResponsePolicy(),
            encoder=encoder,
            estimator=estimator,
        )

    return Grouper(
        config=GroupingConfig(policy=policy),
        rulebook=RuleBook(),
        estimator=estimator,
        class_factory=factory,
        seed=2002,
    )


def run_policy(
    policy: str,
    requests: list[tuple[str, int, bool]],
    skeletons: list[bytes],
    tails: list[bytes],
) -> dict:
    """Replay the workload through one grouper; time only the classify loop."""
    estimator = LightEstimator()
    grouper = make_grouper(policy, estimator)
    assignments: list[tuple[DocumentClass, bool]] = []
    started = time.perf_counter()
    for n, (url, family, _sessiony) in enumerate(requests):
        document = skeletons[family] + tails[n]
        cls, created = grouper.classify(url, document)
        if created:
            with cls.lock:
                cls.adopt_base(document, owner_user=None, now=0.0)
        assignments.append((cls, created))
    elapsed = time.perf_counter() - started

    # Untimed quality pass: delta bytes saved against each URL's *final*
    # class base.  Joined URLs only — a class's first request is a full
    # response, so every singleton a failed search mints earns nothing.
    saved = 0
    joined = 0
    for n, (url, family, _sessiony) in enumerate(requests):
        cls, created = assignments[n]
        if created:
            continue
        document = skeletons[family] + tails[n]
        with cls.lock:
            index = cls.light_index()
        if index is None:
            continue
        estimate = estimator.estimate_with_index(index, document)
        saved += max(0, len(document) - estimate)
        joined += 1

    stats = grouper.stats
    return {
        "policy": policy,
        "seconds": round(elapsed, 3),
        "urls_per_second": round(len(requests) / elapsed, 1),
        "classes": grouper.class_count(),
        "joined_urls": joined,
        "mean_probes_per_request": round(
            stats.total_tries / max(stats.requests, 1), 3
        ),
        "mean_probes_per_match": round(stats.mean_tries, 3),
        "sketch_hits": stats.sketch_hits,
        "sketch_misses": stats.sketch_misses,
        "delta_bytes_saved": saved,
    }


def run_benchmark(
    urls: int = DEFAULT_URLS,
    families_per_server: int = FAMILIES_PER_SERVER,
    smoke: bool = False,
    seed: int = 2002,
) -> dict:
    if smoke:
        urls = min(urls, SMOKE_URLS)
        families_per_server = min(families_per_server, SMOKE_FAMILIES_PER_SERVER)
    requests, skeletons, tails = build_workload(urls, families_per_server, seed)
    scan = run_policy("scan", requests, skeletons, tails)
    sketch = run_policy("sketch", requests, skeletons, tails)

    speedup = sketch["urls_per_second"] / max(scan["urls_per_second"], 1e-9)
    parity = sketch["delta_bytes_saved"] / max(scan["delta_bytes_saved"], 1)
    result = {
        "workload": {
            "urls": urls,
            "servers": SERVERS,
            "families": SERVERS * families_per_server,
            "session_fraction": SESSION_FRACTION,
            "document_bytes": SKELETON_BYTES + TAIL_BYTES,
            "seed": seed,
        },
        "scan": scan,
        "sketch": sketch,
        "throughput_ratio": round(speedup, 2),
        "savings_ratio": round(parity, 4),
        "gates": {
            "throughput_gate": None if smoke else THROUGHPUT_GATE,
            "parity_gate": PARITY_GATE,
            "smoke": smoke,
            "passed": (
                parity >= PARITY_GATE
                and (smoke or speedup >= THROUGHPUT_GATE)
            ),
        },
    }
    return result


def render(result: dict) -> str:
    w, gates = result["workload"], result["gates"]
    rows = []
    for arm in ("scan", "sketch"):
        r = result[arm]
        rows.append(
            f"{arm:<8} {r['urls_per_second']:>12,.0f} {r['classes']:>9,} "
            f"{r['mean_probes_per_request']:>8.2f} "
            f"{r['delta_bytes_saved']:>16,}"
        )
    gate_note = (
        "parity only (smoke)"
        if gates["smoke"]
        else f">= {gates['throughput_gate']:.0f}x and parity >= {gates['parity_gate']:.0%}"
    )
    return "\n".join(
        [
            f"workload: {w['urls']:,} URLs, {w['families']:,} families over "
            f"{w['servers']} servers, {w['session_fraction']:.0%} session-style "
            f"(~{w['document_bytes']} B documents)",
            "",
            f"{'policy':<8} {'URLs/s':>12} {'classes':>9} {'probes':>8} "
            f"{'delta bytes saved':>16}",
            *rows,
            "",
            f"sketch vs scan: {result['throughput_ratio']:.1f}x classify "
            f"throughput, {result['savings_ratio']:.2f}x delta bytes saved "
            f"(gate: {gate_note})",
            f"gate: {'PASS' if gates['passed'] else 'FAIL'}",
        ]
    )


def bench_grouping_scale(benchmark) -> None:
    """Pytest-benchmark entry point (smoke-sized)."""
    from _util import emit, once

    result = once(benchmark, lambda: run_benchmark(smoke=True))
    emit("grouping_scale", render(result))
    out = Path(__file__).parent / "results" / "BENCH_grouping.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    assert result["gates"]["passed"], render(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--urls", type=int, default=DEFAULT_URLS)
    parser.add_argument(
        "--families-per-server", type=int, default=FAMILIES_PER_SERVER
    )
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument(
        "--smoke", action="store_true",
        help="10k URLs; gate on savings parity only (speedup informational)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_grouping.json",
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        urls=args.urls,
        families_per_server=args.families_per_server,
        smoke=args.smoke,
        seed=args.seed,
    )
    print(render(result))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    if not result["gates"]["passed"]:
        print("FAIL: grouping-scale gates not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
