"""Hierarchical caching benchmark: N clients behind a proxy tier vs. direct.

The Section VI-B scalability argument is that anonymized base-files are
ordinary cachable objects, so "many different users will download the
same base-files from a proxy-cache" — one upstream transfer per base-file
instead of one per client.  This benchmark measures that live:

* one :class:`~repro.serve.server.DeltaHTTPServer` upstream, pre-warmed
  so anonymization is READY before measurement;
* N client populations (one :class:`~repro.serve.loadgen.LoadGenerator`
  each, with its own base-file cache — each models one household/office
  of Fig. 2), replaying disjoint per-user partitions of one trace;
* scenario A (**direct**): every client connects straight to the server;
* scenario B (**proxy**): the same fresh client populations connect
  through one :class:`~repro.proxy.server.ProxyHTTPServer`.

Reported and gated:

* **upstream byte reduction** — wire bytes leaving the server in the
  proxy scenario vs. direct (gate: >= 30% with 8 clients on the full
  run; any reduction in ``--smoke``);
* **base-file hit rate** — proxy cache hits over base-file lookups
  (gate: >= 50% full, > 0 smoke);
* **byte parity**, all verified in the same run: every response in both
  scenarios passes digest / delta-checksum verification plus an
  independent twin-origin re-render at the server-stamped snapshot, and
  every base-file a client ended up holding is re-fetched both directly
  and through the proxy and must be byte-identical.

Results land in ``benchmarks/results/BENCH_proxy.json``.  Run standalone::

    python benchmarks/bench_proxy_tier.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_...py` directly
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.http.messages import Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.proxy import ProxyHTTPServer
from repro.serve import LoadGenConfig, LoadGenerator, build_server
from repro.serve.protocol import read_response, serialize_request
from repro.workload.generator import WorkloadSpec, generate_workload
from repro.workload.trace import Trace

SITE = "www.tier.example"

DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 400
SMOKE_REQUESTS = 120
FULL_REDUCTION_GATE = 0.30  # ISSUE acceptance: >= 30% with 8 clients
FULL_HIT_RATE_GATE = 0.50


def make_spec() -> SiteSpec:
    return SiteSpec(name=SITE, products_per_category=5)


def partition_trace(trace: Trace, clients: int) -> list[Trace]:
    """Split a trace into per-client-population subtraces by user."""
    users = sorted(trace.users)
    owner = {user: i % clients for i, user in enumerate(users)}
    parts: list[list] = [[] for _ in range(clients)]
    for record in trace:
        parts[owner[record.user]].append(record)
    return [
        Trace(name=f"{trace.name}-c{i}", records=records)
        for i, records in enumerate(parts)
    ]


async def fetch_once(host: str, port: int, url: str) -> bytes:
    """One anonymous GET on its own connection; returns the body."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(serialize_request(Request(url=url), keep_alive=False))
        await writer.drain()
        parsed = await asyncio.wait_for(read_response(reader), 15.0)
        if parsed.response.status != 200:
            raise RuntimeError(f"{url}: status {parsed.response.status}")
        return parsed.response.body
    finally:
        writer.close()


async def warm_server(server, spec: SiteSpec) -> None:
    """Drive anonymization to READY for every page before measuring."""
    site = server.gateway.origin.site(SITE)
    config = LoadGenConfig(
        host=server.address[0], port=server.address[1], concurrency=4, verify=True
    )
    warm = Trace(
        name="warm",
        records=[],
    )
    from repro.workload.trace import TraceRecord

    stamp = 0.0
    for url in sorted(site.url_for(page) for page in site.all_pages()):
        for user in ("warm-a", "warm-b", "warm-c"):
            warm.records.append(TraceRecord(timestamp=stamp, user=user, url=url))
            stamp += 0.01
    report = await LoadGenerator(config).run(warm)
    if report.errors or report.verify_failures:
        raise RuntimeError(f"warm-up failed: {report.render()}")


def make_verify(spec: SiteSpec):
    twin = OriginServer([SyntheticSite(spec)])

    def verify(url: str, user: str, served_at: float) -> bytes:
        return twin.handle(
            Request(url=url, cookies={"uid": user}, client_id=user), served_at
        ).body

    return verify


async def run_clients(
    subtraces: list[Trace],
    spec: SiteSpec,
    connect: tuple[str, int],
    origin: tuple[str, int],
) -> tuple[list, list[LoadGenerator]]:
    """Run one client population per subtrace, all concurrently."""
    host, port = connect
    origin_host, origin_port = origin
    proxied = connect != origin
    generators = [
        LoadGenerator(
            LoadGenConfig(
                host=origin_host,
                port=origin_port,
                proxy_host=host if proxied else None,
                proxy_port=port if proxied else None,
                concurrency=2,
                verify=True,
                seed=100 + i,
            ),
            verify_render=make_verify(spec),
        )
        for i in range(len(subtraces))
    ]
    reports = await asyncio.gather(
        *(gen.run(sub) for gen, sub in zip(generators, subtraces))
    )
    return list(reports), generators


def summarize_reports(reports: list) -> dict:
    return {
        "requests": sum(r.requests for r in reports),
        "completed": sum(r.completed for r in reports),
        "deltas": sum(r.deltas for r in reports),
        "fulls": sum(r.fulls for r in reports),
        "base_fetches": sum(r.base_fetches for r in reports),
        "base_bytes": sum(r.base_bytes for r in reports),
        "wire_bytes_in": sum(r.wire_bytes_in for r in reports),
        "wire_bytes_out": sum(r.wire_bytes_out for r in reports),
        "errors": sum(r.errors for r in reports),
        "verify_failures": sum(r.verify_failures for r in reports),
        "delta_failures": sum(r.delta_failures for r in reports),
    }


async def run_experiment(clients: int, requests: int, seed: int) -> dict:
    spec = make_spec()
    workload = generate_workload(
        [SyntheticSite(spec)],
        WorkloadSpec(name="proxy-tier", requests=requests, users=clients, seed=seed),
    )
    subtraces = partition_trace(workload.trace, clients)
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
    )
    async with build_server([SyntheticSite(spec)], config=config) as server:
        await warm_server(server, spec)

        # Scenario A: every client population talks straight to the server.
        bytes_out_before = server.stats.bytes_out
        direct_reports, _ = await run_clients(
            subtraces, spec, server.address, server.address
        )
        direct_upstream_wire = server.stats.bytes_out - bytes_out_before
        direct = summarize_reports(direct_reports)
        direct["upstream_wire_bytes"] = direct_upstream_wire

        # Scenario B: fresh, identical populations behind one proxy tier.
        async with ProxyHTTPServer(*server.address) as proxy:
            proxy_reports, generators = await run_clients(
                subtraces, spec, proxy.address, server.address
            )
            via = summarize_reports(proxy_reports)
            via["upstream_wire_bytes"] = proxy.stats.upstream_wire_bytes

            # Byte parity: every base-file any client holds must read
            # byte-identical directly and through the proxy.
            held = sorted(
                {ref for gen in generators for ref in gen.held_base_refs()}
            )
            parity_checked = 0
            for ref in held:
                url = f"{SITE}/__delta_base__/{ref}"
                direct_body = await fetch_once(*server.address, url)
                proxied_body = await fetch_once(*proxy.address, url)
                assert direct_body == proxied_body, f"parity broken for {ref}"
                parity_checked += 1

            cache = proxy.cache.stats
            base_lookups = cache.hits + cache.insertions + cache.replacements
            hit_rate = cache.hits / base_lookups if base_lookups else 0.0
            proxy_stats = {
                "requests": proxy.stats.requests,
                "upstream_requests": proxy.stats.upstream_requests,
                "upstream_wire_bytes": proxy.stats.upstream_wire_bytes,
                "downstream_wire_bytes": proxy.stats.downstream_wire_bytes,
                "upstream_body_bytes": proxy.stats.upstream_bytes,
                "downstream_body_bytes": proxy.stats.downstream_bytes,
                "cache_hits": cache.hits,
                "cache_misses": cache.misses,
                "cache_insertions": cache.insertions,
                "base_file_hit_rate": round(hit_rate, 4),
                "hit_bytes": cache.hit_bytes,
            }
            conservation = (
                proxy.stats.downstream_bytes >= proxy.stats.upstream_bytes
            )

    reduction = (
        1.0 - via["upstream_wire_bytes"] / direct["upstream_wire_bytes"]
        if direct["upstream_wire_bytes"]
        else 0.0
    )
    clean = all(
        s["errors"] == s["verify_failures"] == s["delta_failures"] == 0
        and s["completed"] == s["requests"]
        for s in (direct, via)
    )
    return {
        "workload": {
            "clients": clients,
            "requests": requests,
            "users": clients,
            "seed": seed,
        },
        "direct": direct,
        "via_proxy": via,
        "proxy": proxy_stats,
        "upstream_byte_reduction": round(reduction, 4),
        "byte_parity": {
            "base_files_compared": parity_checked,
            "identical": True,  # asserted above; reaching here means it held
            "every_response_verified": clean,
            "downstream_ge_upstream": conservation,
        },
    }


def run_benchmark(
    clients: int = DEFAULT_CLIENTS,
    requests: int = DEFAULT_REQUESTS,
    smoke: bool = False,
    seed: int = 42,
) -> dict:
    if smoke:
        requests = min(requests, SMOKE_REQUESTS)
    result = asyncio.run(run_experiment(clients, requests, seed))
    reduction_gate = 0.0 if smoke else FULL_REDUCTION_GATE
    hit_gate = 0.0 if smoke else FULL_HIT_RATE_GATE
    result["gates"] = {
        "reduction_gate": reduction_gate,
        "hit_rate_gate": hit_gate,
        "smoke": smoke,
        "passed": (
            result["upstream_byte_reduction"] > reduction_gate
            and result["proxy"]["base_file_hit_rate"] > hit_gate
            and result["byte_parity"]["every_response_verified"]
            and result["byte_parity"]["downstream_ge_upstream"]
        ),
    }
    return result


def render(result: dict) -> str:
    direct, via, proxy = result["direct"], result["via_proxy"], result["proxy"]
    gates = result["gates"]
    lines = [
        f"workload: {result['workload']}",
        "",
        f"{'scenario':<12} {'completed':>10} {'deltas':>7} {'base fetches':>13} "
        f"{'upstream wire B':>16}",
    ]
    for name, s in (("direct", direct), ("via proxy", via)):
        lines.append(
            f"{name:<12} {s['completed']:>10} {s['deltas']:>7} "
            f"{s['base_fetches']:>13} {s['upstream_wire_bytes']:>16,}"
        )
    lines += [
        "",
        f"proxy: {proxy['cache_hits']} hits / {proxy['cache_insertions']} "
        f"insertions (base-file hit rate {proxy['base_file_hit_rate']:.1%}), "
        f"{proxy['hit_bytes']:,} B served from cache",
        f"upstream byte reduction: {result['upstream_byte_reduction']:.1%} "
        f"(gate {gates['reduction_gate']:.0%})",
        f"byte parity: {result['byte_parity']['base_files_compared']} base-files "
        f"identical direct vs proxied; all responses verified: "
        f"{result['byte_parity']['every_response_verified']}",
        f"gate: {'PASS' if gates['passed'] else 'FAIL'}",
    ]
    return "\n".join(lines)


def bench_proxy_tier(benchmark) -> None:
    """Pytest-benchmark entry point (smoke-sized)."""
    from _util import emit, once

    result = once(benchmark, lambda: run_benchmark(smoke=True))
    emit("proxy_tier", render(result))
    out = Path(__file__).parent / "results" / "BENCH_proxy.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    assert result["gates"]["passed"], render(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small run; gates relax to 'any reduction, any hits'",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_proxy.json",
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        clients=args.clients, requests=args.requests, smoke=args.smoke,
        seed=args.seed,
    )
    print(render(result))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    if not result["gates"]["passed"]:
        print("FAIL: proxy tier gates not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
