#!/usr/bin/env python3
"""Compile EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only`` to regenerate the
paper-vs-measured log:

    python benchmarks/compile_experiments.py
"""

from __future__ import annotations

from pathlib import Path

RESULTS = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "EXPERIMENTS.md"

# (section title, commentary, result files)
SECTIONS: list[tuple[str, str, list[str]]] = [
    (
        "Table I — URL parts",
        "The three URL organizations from the paper partition exactly as "
        "printed in Table I (asserted byte-for-byte in the bench).",
        ["table1_url_parts"],
    ),
    (
        "Table II — bandwidth savings (three sites)",
        "Synthetic traces with the paper's exact request counts "
        "(16407/1476/7460) replayed through the full client → proxy → "
        "delta-server → origin stack.  Paper: 94.8–97.1 % savings, 19–35×. "
        "The shape holds: all sites land in the 94–96 % band, the ordering "
        "(site 3 > site 2) matches, and the reduction factor is ~20×. "
        "Absolute direct-KB differs because our documents average ~44 KB of "
        "synthetic HTML rather than the sites' real content.",
        ["table2_site1", "table2_site2", "table2_site3"],
    ),
    (
        "Table III — base-file selection policies",
        "Five permutations of one class's request stream, randomized policy "
        "with the paper's K=8, p=0.2.  Paper shape reproduced: the "
        "randomized algorithm tracks the online optimum closely and never "
        "degrades, while first-response is erratic — catastrophic on "
        "permutations that open with an off-center document (the paper: "
        "'can be very bad, which is never the case for the randomized "
        "algorithm').  Absolute delta sizes differ (our class documents are "
        "~18 KB vs whatever the paper's site served).",
        ["table3_basefile", "table3_offline_reference"],
    ),
    (
        "Table IV — anonymization levels",
        "One ~82 KB personalized page, anonymized at the paper's (M, N) "
        "levels.  Paper: base shrinks 13–16 %, deltas grow only slightly "
        "(5224 → 6097–6520).  Measured: base shrinks 9–10 %, deltas grow "
        "~3 % — same 'minimal cost' conclusion, and the bench additionally "
        "asserts zero private tokens survive in any anonymized base.",
        ["table4_anonymization"],
    ),
    (
        "Fig. 2 — transparent deployment architecture",
        "Full-stack replay with byte-for-byte verification, plus the "
        "Section VI-B proxy-synergy claim: cachable (anonymized) base-files "
        "let a shared proxy absorb base distribution.",
        ["fig2_correctness", "fig2_proxy_synergy"],
    ),
    (
        "§VI-A — latency ratios",
        "Paper: L1/L2 ≈ 5 on high-bandwidth paths (slow-start rounds) and "
        "≈ 10 over a 56 Kb/s modem.  Both the analytic formulas and the TCP "
        "slow-start simulator land on the paper's numbers.",
        ["latency_model", "latency_sweep"],
    ),
    (
        "§VI-B — grouping",
        "Session-URL workload (every (user, page) pair is a distinct "
        "URL-request).  Paper: grouped 'after a couple of tries', 10–100× "
        "fewer classes than documents, no noticeable savings reduction vs "
        "classless.  Measured: 1.0 probes with page-level admin regexes "
        "(~3 with category-level ones), ~19 documents per class, and "
        "the class-based scheme actually *beats* classless on savings while "
        "storing ~10× fewer base-files.",
        ["grouping_efficiency", "grouping_savings_unchanged"],
    ),
    (
        "Grouping at scale — sketch/LSH candidate index",
        "Beyond the paper: Section III's search considers every same-server "
        "class when a URL's hint matches nothing, which is the scaling wall "
        "for session-heavy million-URL sites (each unmatched session URL "
        "pays an O(classes) search *and* mints a new singleton class).  The "
        "MinHash/LSH candidate index (`repro.core.sketch`, "
        "`GroupingConfig.policy=\"sketch\"`) sketches the request document "
        "once and narrows candidates to near-duplicate bases in O(1); the "
        "scan policy is kept as the parity baseline.  On the 100k-URL "
        "two-server workload the sketch arm classifies an order of "
        "magnitude faster, keeps the class count at the family count "
        "instead of exploding with churn singletons, and *gains* delta "
        "bytes saved (the scan rarely finds the right class among "
        "thousands within its probe budget).  Signatures persist with "
        "committed bases, so warm restarts skip re-sketching.",
        ["grouping_scale"],
    ),
    (
        "§VI-C — capacity and delta-generation cost",
        "Paper (P-III 866 MHz): 6–8 ms per delta on 50–60 KB base-files; "
        "plain Apache 175–180 req/s / 255 connections; with delta-server "
        "~130 req/s but 500+ sustainable connections.  Our pure-Python "
        "differ measures in the same range on modern hardware; the "
        "calibrated analytic model and the discrete-event simulation both "
        "reproduce the 175–180 vs ~130 split and the concurrency flip.",
        ["capacity_delta_cost", "capacity_comparison", "capacity_des_sweep"],
    ),
    (
        "§VI-C live — real-socket serving (repro.serve)",
        "The same comparison run for real: the delta-server engine behind "
        "an asyncio HTTP/1.1 listener (255-connection ceiling, worker-pool "
        "offload), a closed-loop load generator replaying one trace against "
        "plain and delta servers over loopback, every response verified "
        "byte-for-byte client-side.  Paper shape holds: plain wins raw "
        "req/s (its 1.35× gap is wider here — a pure-Python differ costs "
        "more relative to the origin render than Vdelta did relative to "
        "Apache), while the modeled 56K-modem hold time of each mode's "
        "measured mean on-wire response flips the connection-limited "
        "capacity in delta's favour — the 'sustains 500+ connections' "
        "headline.",
        ["serve_capacity"],
    ),
    (
        "Chaos soak — resilience of the live stack (repro.resilience)",
        "Not a paper experiment but a deployment-hardening gate for the "
        "Fig. 2 posture: if the delta-server sits in the request path next "
        "to the origin, it must not amplify an origin outage or a storage "
        "fault into wrong bytes or raw 500s.  The soak "
        "(`tests/integration/test_chaos_soak.py`, mirrored by the "
        "`chaos-smoke` CI job) drives the live server through six phases:\n"
        "\n"
        "1. **warm-up** — clean closed-loop replay; classes form, "
        "base-files\n   distribute, deltas verify byte-for-byte;\n"
        "2. **bit-rot** — one class's distributable base is corrupted in "
        "place;\n   the promotion-time checksum catches it on the next "
        "delta attempt, the\n   class is quarantined (fulls only), and no "
        "rotten delta ships;\n"
        "3. **chaos** — a seeded fault plan injects 10% origin 500s plus "
        "latency\n   spikes while clients replay with 4 retries: all 120 "
        "requests complete,\n   zero byte mismatches, zero 500s observed "
        "on either side of the wire,\n   and the quarantined class heals "
        "(fresh base re-adopted);\n"
        "4. **outage** — a 100% error burst opens the circuit breaker; "
        "requests\n   degrade to the class's base-file as a marked-stale "
        "200\n   (`X-Degraded: stale-base`) without touching the dead "
        "origin;\n"
        "5. **recovery** — faults stop, the cooldown passes, half-open "
        "probe\n   traffic recloses the breaker, and a full replay "
        "verifies clean;\n"
        "6. **drain** — the server closes gracefully with no connection "
        "leaked.\n"
        "\n"
        "Measured on the loopback testbed: the 10%-error phase completes "
        "with the server-side policy absorbing essentially every fault "
        "before clients see it (retry counters on the client side stay at "
        "or near zero with `--origin-retries 4`), which is the point — "
        "resilience belongs next to the origin, where the breaker state "
        "is shared across all clients.",
        [],
    ),
    (
        "§IV & §V — closed-form bounds",
        "The paper's worked examples reproduce to the printed precision: "
        "P_error ≤ 8·10⁻¹¹ for (N=1000, K=10); privacy bound 4.7·10⁻⁷ vs "
        "exact 2.4·10⁻⁸ for (p=0.01, N=10, M=5).  Monte-Carlo validators "
        "agree with the closed forms.",
        ["section4_bound", "section4_montecarlo", "section5_bounds"],
    ),
    (
        "Baselines — the introduction narrative",
        "Personalized session-URL traffic over an hourly-revised catalog. "
        "Plain proxy caching saves nothing on dynamic traffic.  Our HPP "
        "baseline is deliberately idealized (differ-derived chunk-level "
        "templates, zlib-compressed bindings — neither existed in 1997 "
        "HPP) and on per-request bytes it is competitive with class-based "
        "delta-encoding; the paper's 2–8× describes HPP as published.  The "
        "structural separation the reproduction confirms is server-side "
        "state — HPP keeps a template per (user, page) document, 4–6× the "
        "bytes of the shared class base-files — and drift adaptivity "
        "(rebases vs a fixed template).  An honest negative-space finding: "
        "with modern differs and compression, the bandwidth gap the paper "
        "reports over HPP narrows; the scalability argument is what "
        "survives.",
        ["baseline_comparison"],
    ),
    (
        "Delta kernel — streaming rewrite vs its own history",
        "Engineering gate rather than a paper table: the zero-copy "
        "streaming encode kernel against a frozen verbatim copy of the "
        "pre-rewrite encoder (`benchmarks/_legacy_vdelta.py`) on five "
        "document-pair regimes.  Gates: byte-identical wire everywhere, "
        "chunked encode→compressobj output identical to compressing the "
        "whole wire image, ≥ 2× encode throughput on the reference "
        "dynamic-page pair (measured 2.6–2.8×), and no pair regressing "
        "below the legacy kernel.  This is the §VI-C delta-generation "
        "cost lever: faster encodes raise the delta-system capacity "
        "ceiling.",
        ["delta_kernel"],
    ),
    (
        "Ablations",
        "Design choices the paper calls out, swept: light-vs-full differ "
        "(≈5× cheaper, rank correlation ≈ 0.85), the three eviction "
        "variants (equivalent quality), the a·N popularity probe split "
        "(popularity-first wins under Zipf traffic), rebase-timeout (fewer "
        "rebases ↔ slightly better savings on stable content), and the "
        "storage budget (savings degrade gracefully as the base-file store "
        "is squeezed — the scalability trade the paper's scheme exists to "
        "improve).",
        [
            "ablation_light_vs_full",
            "ablation_eviction_worst",
            "ablation_eviction_periodic_random",
            "ablation_eviction_two_set",
            "ablation_popularity_split",
            "ablation_rebase_timeout",
            "ablation_storage_budget",
        ],
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table and figure in the paper's evaluation, regenerated by
`pytest benchmarks/ --benchmark-only` (full scale; `REPRO_BENCH_SCALE`
scales traces down for iteration).  Raw tables below are copied verbatim
from `benchmarks/results/`; the bench that produced each one also asserts
the paper's qualitative claims, so a passing bench run *is* the
reproduction check.

Absolute byte counts differ from the paper where they must — the paper's
traces, documents, and testbed are proprietary/obsolete and are replaced
by documented synthetic equivalents (DESIGN.md §1).  What is reproduced is
the *shape*: who wins, by roughly what factor, and where the crossovers
fall.

"""


def main() -> None:
    parts = [HEADER]
    missing: list[str] = []
    for title, commentary, files in SECTIONS:
        parts.append(f"## {title}\n\n{commentary}\n")
        for name in files:
            path = RESULTS / f"{name}.txt"
            if not path.exists():
                missing.append(name)
                continue
            body = path.read_text().rstrip()
            parts.append(f"```\n{body}\n```\n")
    if missing:
        parts.append(
            "\n*Missing results (bench not yet run at this scale): "
            + ", ".join(missing)
            + "*\n"
        )
    OUTPUT.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {OUTPUT} ({len(SECTIONS)} sections, {len(missing)} missing)")


if __name__ == "__main__":
    main()
