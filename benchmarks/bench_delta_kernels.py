"""Micro-benchmarks of the delta substrate's kernels.

Not a paper table — these are the operations whose costs Section VI-C
discusses (delta generation, compression, client-side reconstruction) on
paper-sized documents, timed individually so regressions in the hot path
show up here first.
"""

import pytest

from repro.delta import (
    LightEstimator,
    VdeltaEncoder,
    apply_delta,
    checksum,
    compress,
    decompress,
    encode_delta,
    make_delta,
)
from repro.origin import SiteSpec, SyntheticSite


@pytest.fixture(scope="module")
def pair():
    site = SyntheticSite(
        SiteSpec(
            name="www.kern.example",
            header_bytes=6000,
            skeleton_bytes=28000,
            detail_bytes=16000,
            dynamic_bytes=4000,
        )
    )
    page = site.all_pages()[0]
    return site.render(page, 0.0), site.render(page, 600.0)


def bench_index_build(benchmark, pair):
    """Hash-index construction over a 50-60 KB base-file."""
    base, _ = pair
    encoder = VdeltaEncoder()
    index = benchmark(lambda: encoder.index(base))
    assert len(index) > 0


def bench_encode_with_index(benchmark, pair):
    """Delta generation with an amortized index (the server hot path)."""
    base, document = pair
    encoder = VdeltaEncoder()
    index = encoder.index(base)
    result = benchmark(lambda: encoder.encode_with_index(index, document))
    assert result.stats.match_ratio > 0.8


def bench_one_shot_delta(benchmark, pair):
    """Index + encode + serialize in one call (cold path)."""
    base, document = pair
    payload = benchmark(lambda: make_delta(base, document))
    assert len(payload) < len(document) * 0.2


def bench_apply(benchmark, pair):
    """Client-side reconstruction ('insignificant' latency, footnote 9)."""
    base, document = pair
    payload = make_delta(base, document)
    out = benchmark(lambda: apply_delta(payload, base))
    assert out == document


def bench_light_estimate(benchmark, pair):
    """The grouping estimator with a cached index."""
    base, document = pair
    estimator = LightEstimator()
    index = estimator.index(base)
    estimate = benchmark(lambda: estimator.estimate_with_index(index, document))
    assert estimate > 0


def bench_compress_delta(benchmark, pair):
    """Gzip-equivalent compression of a raw delta."""
    base, document = pair
    encoder = VdeltaEncoder()
    result = encoder.encode(base, document)
    wire = encode_delta(result.instructions, len(base), checksum(document))
    payload = benchmark(lambda: compress(wire))
    assert decompress(payload) == wire
