"""Delta kernel benchmark: streaming wire kernel vs the pre-rewrite encoder.

The encode hot path was rewritten for zero-copy, allocation-free operation
(direct wire emission, ``startswith``-offset match extension, no
per-probe candidate list copies, no intermediate instruction objects, and
encode→``zlib.compressobj`` streaming).  This benchmark drives the live
kernel and a frozen verbatim snapshot of the pre-rewrite encoder
(``benchmarks/_legacy_vdelta.py``) over the same corpus and reports:

* encode throughput (MB/s) per corpus pair and in aggregate, with the
  new/old speedup on the reference pair (``site_rerender``, the corpus
  this file benchmarked before the rewrite — the paper's dynamic-page
  workload) as the headline, gated at >= 2x; every other pair must still
  beat the legacy kernel (> 1x) so the speedup is not bought with a
  regression elsewhere;
* a byte-parity check: both kernels must produce *identical wire bytes*
  for every pair (which also proves wire size <= the old kernel's), and
  the wire must reconstruct the target document exactly;
* a streaming-equivalence check: the chunked encode→compressobj path must
  produce the same compressed payload as compressing the whole wire image.

Results land in machine-readable form in
``benchmarks/results/BENCH_kernel.json`` (override with ``--out``).  Run
standalone::

    python benchmarks/bench_delta_kernels.py --smoke

Exit status is non-zero when the kernel fails its gate: faster than the
legacy encoder at all in ``--smoke`` mode, >= 2x on the full run (the
ISSUE's acceptance bar), or any parity violation.
"""

from __future__ import annotations

import argparse
import json
import random
import string
import sys
import time
import zlib
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_...py` directly
    _HERE = Path(__file__).resolve().parent
    for entry in (str(_HERE.parent / "src"), str(_HERE)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from _legacy_vdelta import LegacyVdeltaEncoder
from repro.delta.apply import apply_delta
from repro.delta.compress import compress
from repro.delta.vdelta import VdeltaEncoder
from repro.origin.site import SiteSpec, SyntheticSite

FULL_GATE = 2.0  # acceptance: >= 2x encode throughput on the reference pair
REFERENCE_PAIR = "site_rerender"  # the pre-rewrite bench corpus
PAIR_FLOOR = 1.0  # no pair may regress below the legacy kernel
FULL_ITERATIONS = 30
SMOKE_ITERATIONS = 4
COMPRESSION_LEVEL = 6


# -- corpus -------------------------------------------------------------------


def _token_pair(
    rng: random.Random, tokens: int, mutations: int
) -> tuple[bytes, bytes]:
    """Token-soup documents sharing all but ``mutations`` tokens — the
    shape of successive renders of one dynamic page."""
    vocab = [
        "".join(rng.choices(string.ascii_lowercase, k=8)) for _ in range(tokens)
    ]
    base = " ".join(vocab).encode()
    mutated = list(vocab)
    for _ in range(mutations):
        mutated[rng.randrange(tokens)] = "".join(
            rng.choices(string.ascii_lowercase, k=8)
        )
    return base, " ".join(mutated).encode()


def build_corpus(seed: int = 20020704) -> list[dict]:
    """Named (base, target) pairs spanning the kernel's regimes."""
    rng = random.Random(seed)
    site = SyntheticSite(
        SiteSpec(
            name="www.kern.example",
            header_bytes=6000,
            skeleton_bytes=28000,
            detail_bytes=16000,
            dynamic_bytes=4000,
        )
    )
    page = site.all_pages()[0]
    pairs = [
        {
            "name": "site_rerender",
            "comment": "55 KB synthetic page, two renders 10 min apart",
            "base": site.render(page, 0.0),
            "target": site.render(page, 600.0),
        },
    ]
    base, target = _token_pair(rng, tokens=3000, mutations=90)
    pairs.append(
        {
            "name": "token_drift",
            "comment": "27 KB token soup, ~3% tokens replaced",
            "base": base,
            "target": target,
        }
    )
    base, target = _token_pair(rng, tokens=700, mutations=20)
    pairs.append(
        {
            "name": "small_doc",
            "comment": "6 KB document, the min_document_bytes regime",
            "base": base,
            "target": target,
        }
    )
    run_base, run_target = _token_pair(rng, tokens=1500, mutations=40)
    pairs.append(
        {
            "name": "padded_runs",
            "comment": "13 KB document with long padding runs in the edits",
            "base": run_base + b" " * 400 + run_base[:2000],
            "target": run_target + b"=" * 700 + run_base[:2000] + b"\n" * 300,
        }
    )
    unrelated = "".join(
        rng.choices(string.ascii_letters + string.digits, k=20000)
    ).encode()
    pairs.append(
        {
            "name": "cold_mismatch",
            "comment": "20 KB of unrelated bytes — the literal-heavy worst case",
            "base": pairs[0]["base"],
            "target": unrelated,
        }
    )
    return pairs


# -- measurement --------------------------------------------------------------


def _time_encode(encode, iterations: int) -> float:
    """Best-of-three mean seconds per encode (shields against CI jitter)."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(iterations):
            encode()
        best = min(best, (time.perf_counter() - started) / iterations)
    return best


def measure_pair(pair: dict, iterations: int) -> dict:
    base, target = pair["base"], pair["target"]
    new_encoder = VdeltaEncoder()
    legacy_encoder = LegacyVdeltaEncoder()
    new_index = new_encoder.index(base)
    legacy_index = legacy_encoder.index(base)
    target_checksum = zlib.adler32(target) & 0xFFFFFFFF

    new_wire = bytes(
        new_encoder.encode_wire_with_index(new_index, target, target_checksum)
    )
    legacy_wire = legacy_encoder.encode_wire(legacy_index, target, target_checksum)
    wire_identical = new_wire == legacy_wire
    reconstructs = apply_delta(new_wire, base) == target

    # Streaming equivalence: chunked encode->compressobj must equal
    # compressing the whole wire image (what the engine used to ship).
    compressor = zlib.compressobj(COMPRESSION_LEVEL)
    parts: list[bytes] = []
    streamed_size = new_encoder.encode_stream_with_index(
        new_index,
        target,
        lambda chunk: parts.append(compressor.compress(chunk)),
        target_checksum,
    )
    parts.append(compressor.flush())
    stream_equivalent = (
        streamed_size == len(new_wire)
        and b"".join(parts) == compress(new_wire, COMPRESSION_LEVEL)
    )

    buffer = bytearray()
    new_seconds = _time_encode(
        lambda: new_encoder.encode_wire_with_index(
            new_index, target, target_checksum, out=buffer
        ),
        iterations,
    )
    legacy_seconds = _time_encode(
        lambda: legacy_encoder.encode_wire(legacy_index, target, target_checksum),
        iterations,
    )
    return {
        "name": pair["name"],
        "comment": pair["comment"],
        "base_bytes": len(base),
        "target_bytes": len(target),
        "wire_bytes": len(new_wire),
        "legacy_wire_bytes": len(legacy_wire),
        "new_ms": round(new_seconds * 1e3, 4),
        "legacy_ms": round(legacy_seconds * 1e3, 4),
        "new_mb_s": round(len(target) / new_seconds / 1e6, 2),
        "legacy_mb_s": round(len(target) / legacy_seconds / 1e6, 2),
        "speedup": round(legacy_seconds / new_seconds, 2),
        "wire_identical": wire_identical,
        "reconstructs": reconstructs,
        "stream_equivalent": stream_equivalent,
        "_new_seconds": new_seconds,
        "_legacy_seconds": legacy_seconds,
    }


def run_benchmark(smoke: bool = False, seed: int = 20020704) -> dict:
    iterations = SMOKE_ITERATIONS if smoke else FULL_ITERATIONS
    pairs = build_corpus(seed)
    results = [measure_pair(pair, iterations) for pair in pairs]

    total_new = sum(r.pop("_new_seconds") for r in results)
    total_legacy = sum(r.pop("_legacy_seconds") for r in results)
    total_bytes = sum(r["target_bytes"] for r in results)
    reference = next(r for r in results if r["name"] == REFERENCE_PAIR)
    speedup = reference["speedup"]
    parity = all(r["wire_identical"] and r["reconstructs"] for r in results)
    streaming = all(r["stream_equivalent"] for r in results)
    wire_bounded = all(
        r["wire_bytes"] <= r["legacy_wire_bytes"] for r in results
    )
    # Smoke runs too few iterations to hold every pair to a timing floor;
    # the full run insists nothing regressed below the legacy kernel.
    no_regression = smoke or all(r["speedup"] > PAIR_FLOOR for r in results)

    gate = 1.0 if smoke else FULL_GATE
    return {
        "workload": {
            "pairs": len(results),
            "iterations": iterations,
            "corpus_bytes": total_bytes,
            "smoke": smoke,
        },
        "pairs": results,
        "reference": {"pair": REFERENCE_PAIR, "speedup": speedup},
        "aggregate": {
            "new_mb_s": round(total_bytes / total_new / 1e6, 2),
            "legacy_mb_s": round(total_bytes / total_legacy / 1e6, 2),
            "speedup": round(total_legacy / total_new, 2) if total_new else 0.0,
        },
        "gate": gate,
        "gate_passed": (speedup > gate if smoke else speedup >= gate)
        and parity
        and streaming
        and wire_bounded
        and no_regression,
        "byte_parity": {
            "wire_identical": parity,
            "wire_size_bounded": wire_bounded,
            "stream_equivalent": streaming,
        },
    }


def render(result: dict) -> str:
    lines = [
        f"workload: {result['workload']}",
        "",
        f"{'pair':<16} {'target':>8} {'wire':>7} {'old MB/s':>9} "
        f"{'new MB/s':>9} {'speedup':>8} {'parity':>7}",
    ]
    for r in result["pairs"]:
        parity = "ok" if r["wire_identical"] and r["reconstructs"] else "FAIL"
        lines.append(
            f"{r['name']:<16} {r['target_bytes']:>8} {r['wire_bytes']:>7} "
            f"{r['legacy_mb_s']:>9.1f} {r['new_mb_s']:>9.1f} "
            f"{r['speedup']:>7.2f}x {parity:>7}"
        )
    agg = result["aggregate"]
    ref = result["reference"]
    lines.append("")
    lines.append(
        f"reference {ref['pair']}: {ref['speedup']}x "
        f"(gate {result['gate']}x, "
        f"{'PASS' if result['gate_passed'] else 'FAIL'}); "
        f"aggregate: {agg['legacy_mb_s']} -> {agg['new_mb_s']} MB/s, "
        f"{agg['speedup']}x; "
        f"wire {'identical' if result['byte_parity']['wire_identical'] else 'DIVERGED'}, "
        f"streaming {'equivalent' if result['byte_parity']['stream_equivalent'] else 'DIVERGED'}"
    )
    return "\n".join(lines)


def bench_delta_kernel(benchmark) -> None:
    """Pytest-benchmark entry point (smoke-sized)."""
    from _util import emit, once

    result = once(benchmark, lambda: run_benchmark(smoke=True))
    emit("delta_kernel", render(result))
    out = Path(__file__).parent / "results" / "BENCH_kernel.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    assert result["byte_parity"]["wire_identical"]
    assert result["byte_parity"]["stream_equivalent"]
    assert result["gate_passed"], (
        f"kernel speedup {result['reference']['speedup']}x on "
        f"{result['reference']['pair']} below gate {result['gate']}x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="few iterations; gate is 'faster than legacy at all' "
        "instead of the full 2x",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_kernel.json",
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(smoke=args.smoke)
    print(render(result))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    if not result["gate_passed"]:
        ref = result["reference"]
        print(
            f"FAIL: {ref['pair']} speedup {ref['speedup']}x below gate "
            f"{result['gate']}x, a pair regressed below {PAIR_FLOOR}x, "
            f"or parity violated ({result['byte_parity']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
