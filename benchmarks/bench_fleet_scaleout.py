"""Fleet scale-out benchmark: 1 worker vs N workers on one listen address.

Section VI's scalability argument is that delta-server capacity must be
able to grow past one process.  This benchmark boots real worker fleets
(:class:`repro.fleet.FleetSupervisor` — separate OS processes sharing
the listen address, classes partitioned by consistent hashing) and
replays the identical closed-loop verified workload against each fleet
size, reporting:

* max sustained requests/s per fleet size and the N-worker speedup;
* the paper's headline unit — how many concurrent 56K-modem clients the
  fleet sustains: each fleet size's measured mean on-wire response
  models a modem hold time, and the fleet carries
  ``min(rps x hold, workers x 255)`` clients (rps-limited or
  slot-limited, whichever binds first);
* zero verification failures in every arm (scale-out must not change
  bytes).

**The speedup gate is core-aware.**  Worker processes scale with
physical parallelism; on a 1-CPU machine N workers time-slice one core
and the speedup is ~1x by construction.  The gate demands >2x for N=4
only when the machine has >=4 cores, >=1.15x for N=2 on 2-3 cores, and
is recorded as skipped (with the measured numbers still committed) on a
single core.  Results land in ``benchmarks/results/BENCH_fleet.json``.
Run standalone::

    python benchmarks/bench_fleet_scaleout.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.fleet import FleetConfig, FleetSupervisor
from repro.http.messages import Request
from repro.network import MODEM_56K
from repro.network.tcp import transfer_time
from repro.origin import OriginServer, SiteSpec, SyntheticSite
from repro.serve import PAPER_CONNECTION_LIMIT, LoadGenConfig, LoadGenerator
from repro.workload import WorkloadSpec, generate_workload

SITE = "www.fleetbench.example"
CONCURRENCY = 16

WORKER_ARGS = (
    "--site", SITE,
    "--categories", "laptops,desktops",
    "--products", "5",
    "--anon-n", "2",
    "--anon-m", "1",
)


def make_spec() -> SiteSpec:
    return SiteSpec(
        name=SITE, categories=("laptops", "desktops"), products_per_category=5
    )


def make_trace(requests: int):
    return generate_workload(
        [SyntheticSite(make_spec())],
        WorkloadSpec(
            name="fleet-scaleout",
            requests=requests,
            users=24,
            duration=120.0,
            revisit_bias=0.6,
            seed=42,
        ),
    ).trace


def make_verify_render():
    twin = OriginServer([SyntheticSite(make_spec())])

    def verify(url: str, user: str, served_at: float) -> bytes:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        return twin.handle(request, served_at).body

    return verify


async def _measure_fleet(workers: int, trace):
    supervisor = FleetSupervisor(
        FleetConfig(workers=workers, worker_args=WORKER_ARGS)
    )
    await supervisor.start()
    try:
        host, port = supervisor.config.host, supervisor.port
        generator = LoadGenerator(
            LoadGenConfig(
                host=host,
                port=port,
                mode="closed",
                concurrency=CONCURRENCY,
                retries=3,
            ),
            verify_render=make_verify_render(),
        )
        # Warm-up pass: classes form and commit, the client base cache
        # seeds — the steady state the paper measures.
        await generator.run(trace)
        return await generator.run(trace)
    finally:
        await supervisor.drain()


def measure_fleet(workers: int, trace):
    return asyncio.run(_measure_fleet(workers, trace))


def modem_clients(rps: float, mean_wire_bytes: float, workers: int) -> dict:
    """Concurrent 56K-modem clients a fleet sustains (Fig. 8's unit).

    Each in-flight modem response holds a connection slot for its
    transfer time; by Little's law the fleet carries ``rps x hold``
    concurrent clients — unless the slot tables bind first at
    ``workers x 255``.
    """
    hold = transfer_time(int(mean_wire_bytes), MODEM_56K).total
    slot_limit = workers * PAPER_CONNECTION_LIMIT
    demand = rps * hold
    return {
        "modem_hold_s": round(hold, 3),
        "slot_limit": slot_limit,
        "clients": round(min(demand, slot_limit), 1),
        "slot_limited": demand >= slot_limit,
    }


def resolve_gate(cores: int, fleet_sizes: list[int]) -> tuple[float | None, str]:
    """(speedup gate, rationale) for this machine's core count."""
    biggest = max(fleet_sizes)
    if cores >= 4 and biggest >= 4:
        return 2.0, f"{cores} cores: N={biggest} must beat 2x one worker"
    if cores >= 2:
        return 1.15, f"{cores} cores: modest parallel win required"
    return None, "skipped: 1 cpu (workers time-slice one core; no parallel speedup is possible)"


def run_benchmark(*, requests: int = 600, smoke: bool = False) -> dict:
    fleet_sizes = [1, 2] if smoke else [1, 4]
    if smoke:
        requests = min(requests, 150)
    trace = make_trace(requests)
    cores = os.cpu_count() or 1

    arms = {}
    for workers in fleet_sizes:
        report = measure_fleet(workers, trace)
        arms[workers] = {
            "workers": workers,
            "throughput_rps": round(report.rps, 1),
            "p50_ms": round(report.latency_ms(50), 2),
            "p99_ms": round(report.latency_ms(99), 2),
            "mean_wire_bytes": round(report.mean_document_wire_bytes, 1),
            "deltas": report.deltas,
            "fulls": report.fulls,
            "errors": report.errors,
            "verify_failures": report.verify_failures,
            "retries": sum(report.retries_by_status.values()),
            "modem": modem_clients(
                report.rps, report.mean_document_wire_bytes, workers
            ),
        }

    single = arms[fleet_sizes[0]]["throughput_rps"]
    biggest = arms[fleet_sizes[-1]]["throughput_rps"]
    speedup = round(biggest / single, 2) if single else 0.0
    gate, rationale = resolve_gate(cores, fleet_sizes)
    return {
        "workload": {
            "requests": len(trace),
            "concurrency": CONCURRENCY,
            "fleet_sizes": fleet_sizes,
            "smoke": smoke,
        },
        "machine": {"cpu_cores": cores},
        "fleets": {str(k): v for k, v in arms.items()},
        "speedup": speedup,
        "scaling_gate": rationale if gate is None else gate,
        "gate_passed": True if gate is None else speedup >= gate,
    }


def render(result: dict) -> str:
    lines = [
        "fleet scale-out: 1 vs N workers, one listen address "
        f"({result['workload']['requests']} verified requests, "
        f"closed loop x{result['workload']['concurrency']}, "
        f"{result['machine']['cpu_cores']} cpu cores)",
        "",
        f"{'workers':<8} {'req/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'wire B':>8} {'modem clients':>14} {'limited by':>11}",
    ]
    for key in sorted(result["fleets"], key=int):
        arm = result["fleets"][key]
        modem = arm["modem"]
        lines.append(
            f"{arm['workers']:<8} {arm['throughput_rps']:>8.1f} "
            f"{arm['p50_ms']:>8.2f} {arm['p99_ms']:>8.2f} "
            f"{arm['mean_wire_bytes']:>8.0f} {modem['clients']:>14.1f} "
            f"{'slots' if modem['slot_limited'] else 'req/s':>11}"
        )
    lines.append("")
    gate = result["scaling_gate"]
    if isinstance(gate, (int, float)):
        verdict = "PASS" if result["gate_passed"] else "FAIL"
        lines.append(f"speedup: {result['speedup']}x (gate {gate}x, {verdict})")
    else:
        lines.append(f"speedup: {result['speedup']}x (gate {gate})")
    return "\n".join(lines)


def _check(result: dict) -> list[str]:
    problems = []
    for key, arm in result["fleets"].items():
        if arm["verify_failures"]:
            problems.append(f"fleet of {key}: {arm['verify_failures']} byte mismatches")
        if arm["errors"]:
            problems.append(f"fleet of {key}: {arm['errors']} client-visible errors")
    if not result["gate_passed"]:
        problems.append(
            f"speedup {result['speedup']}x below gate {result['scaling_gate']}x"
        )
    return problems


def bench_fleet_scaleout(benchmark) -> None:
    """Pytest-benchmark entry point (smoke-sized)."""
    from _util import emit, once

    result = once(benchmark, lambda: run_benchmark(smoke=True))
    emit("fleet_scaleout", render(result))
    out = Path(__file__).parent / "results" / "BENCH_fleet.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    problems = _check(result)
    assert not problems, "; ".join(problems)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small run: fleets of 1 and 2, 150 requests",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_fleet.json",
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(requests=args.requests, smoke=args.smoke)
    print(render(result))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    problems = _check(result)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
