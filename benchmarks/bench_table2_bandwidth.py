"""Table II — bandwidth savings using access-logs from three web-sites.

Paper Table II (commercial traces, URLs withheld):

    site | total requests | direct KB | delta KB | savings
    1    | 16407          | 736495    | 38308    | 94.8%
    2    | 1476           | 49536     | 2474     | 95.0%
    3    | 7460           | 230840    | 6640     | 97.1%

i.e. delta-encoding + gzip cuts outbound traffic by a factor of 20-30.

We replay synthetic traces with the *same request counts* through the full
client -> proxy -> delta-server -> origin architecture (DESIGN.md §1
documents the trace substitution).  The workload regime matches the
paper's: hot commercial content, many revisits per (user, document) pair.
The shape to reproduce is: savings in the 90 %+ band for every site,
reduction factors of order 20-30x.
"""

import pytest
from _util import emit, once, scaled

from repro.core import AnonymizationConfig, DeltaServerConfig
from repro.metrics import fmt_factor, fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import Simulation, SimulationConfig
from repro.workload import WorkloadSpec, generate_workload

# Site profiles sized to the paper's regime: ~45 KB average documents
# (736495 KB / 16407 requests ≈ 45 KB) and hot content — each (user, page)
# pair is revisited dozens of times, so steady-state deltas dominate.
SITES = [
    dict(
        label="1",
        requests=16407,
        users=15,
        site=SiteSpec(
            name="www.site1.example",
            categories=("laptops", "desktops", "tablets"),
            products_per_category=5,
            header_bytes=5000,
            skeleton_bytes=22000,
            detail_bytes=12000,
            dynamic_bytes=2200,
            personal_bytes=1000,
        ),
    ),
    dict(
        label="2",
        requests=1476,
        users=6,
        site=SiteSpec(
            name="www.site2.example",
            categories=("news",),
            products_per_category=3,
            header_bytes=5000,
            skeleton_bytes=22000,
            detail_bytes=12000,
            dynamic_bytes=2200,
            personal_bytes=1000,
        ),
    ),
    dict(
        label="3",
        requests=7460,
        users=10,
        site=SiteSpec(
            name="www.site3.example",
            categories=("finance", "sports"),
            products_per_category=4,
            header_bytes=5000,
            skeleton_bytes=24000,
            detail_bytes=12000,
            dynamic_bytes=1500,  # the most stable of the three sites
            personal_bytes=800,
        ),
    ),
]

PAPER = {"1": (736495, 38308, 0.948), "2": (49536, 2474, 0.950), "3": (230840, 6640, 0.971)}


def replay_site(entry: dict):
    site = SyntheticSite(entry["site"])
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name=f"site{entry['label']}",
            requests=scaled(entry["requests"]),
            users=entry["users"],
            duration=6 * 3600.0,
            revisit_bias=0.75,
            zipf_alpha=1.0,
        ),
    )
    # Table II measures delta-encoding bandwidth (paper Section VI-A);
    # anonymization cost is evaluated separately in Table IV, so the basic
    # M=1 scheme with a short warm-up is used here.
    config = SimulationConfig(
        verify=False,
        delta=DeltaServerConfig(
            anonymization=AnonymizationConfig(documents=3, min_count=1)
        ),
    )
    simulation = Simulation([site], config)
    return simulation.run(workload)


@pytest.mark.parametrize("entry", SITES, ids=[s["label"] for s in SITES])
def bench_table2_site(benchmark, entry):
    """Replay one Table II site and check the savings band."""
    report = once(benchmark, lambda: replay_site(entry))
    bw = report.bandwidth
    paper_direct, paper_delta, paper_savings = PAPER[entry["label"]]
    emit(
        f"table2_site{entry['label']}",
        render_table(
            ["", "total requests", "direct KB", "delta KB", "savings", "factor"],
            [
                [
                    "paper",
                    entry["requests"],
                    paper_direct,
                    paper_delta,
                    fmt_pct(paper_savings),
                    fmt_factor(paper_direct / paper_delta),
                ],
                [
                    "measured",
                    bw.requests,
                    bw.direct_kb,
                    bw.delta_kb,
                    fmt_pct(bw.savings),
                    fmt_factor(bw.reduction_factor),
                ],
            ],
            title=f"Table II, web-site {entry['label']}",
        ),
    )
    # Shape assertions: >=88% savings, >=8x reduction at any scale; the
    # paper band (94-97%, 19-35x) is reached at full scale.
    assert bw.savings > 0.88, f"savings {bw.savings:.1%} below the paper band"
    assert bw.reduction_factor > 8
