"""Section VI-A — bandwidth-to-latency conversion (L1/L2 estimates).

Paper claims, for a 30 KB document vs a 1 KB gzipped delta:

* high-bandwidth path: slow-start RTT rounds give L1/L2 ≈ log2(30) ≈ 5;
* 56 Kb/s modem, 100 ms RTT: transmission-dominated; connection setup,
  queueing, timeouts and losses pull the naive 30x down to L1/L2 ≈ 10;
* overall: "the latency perceived by most users [improves] by a factor of
  10 on average".

The paper validated its estimates with a measurement tool; we validate the
same analytic estimates against the TCP slow-start transfer simulator.
"""

from _util import emit

from repro.analysis import highbw_rounds_ratio, modem_latency_ratio
from repro.metrics import render_table
from repro.network import (
    HIGH_BANDWIDTH,
    MODEM_56K,
    compare_sizes,
    mean_transfer_time,
)

S_LARGE = 30 * 1024
S_SMALL = 1024


def bench_latency_ratios(benchmark):
    highbw = compare_sizes(S_LARGE, S_SMALL, HIGH_BANDWIDTH, samples=400)
    modem = compare_sizes(S_LARGE, S_SMALL, MODEM_56K, samples=400)
    rows = [
        [
            "high-bandwidth",
            "~5 (log2 S1/S2)",
            f"{highbw_rounds_ratio(S_LARGE, S_SMALL):.1f}",
            f"{highbw.rounds_large}/{highbw.rounds_small} = {highbw.rounds_ratio:.1f}",
            f"{highbw.latency_large * 1000:.0f} / {highbw.latency_small * 1000:.0f} ms",
        ],
        [
            "modem 56k, 100ms RTT",
            "~10",
            f"{modem_latency_ratio(S_LARGE, S_SMALL):.1f}",
            f"{modem.latency_ratio:.1f}",
            f"{modem.latency_large * 1000:.0f} / {modem.latency_small * 1000:.0f} ms",
        ],
    ]
    emit(
        "latency_model",
        render_table(
            ["link", "paper L1/L2", "analytic", "simulated", "L1 / L2"],
            rows,
            title="Section VI-A: 30 KB document vs 1 KB delta",
        ),
    )
    # Shape assertions around the paper's figures.
    assert 4 <= highbw.rounds_ratio <= 6
    assert 7 <= modem.latency_ratio <= 13
    benchmark(lambda: mean_transfer_time(S_LARGE, MODEM_56K, samples=50))


def bench_latency_sweep(benchmark):
    """Latency ratio as a function of document size (the paper's 30-50 KB
    'documents that benefit' band)."""
    rows = []
    for size_kb in (10, 20, 30, 40, 50, 80):
        modem_ratio = mean_transfer_time(
            size_kb * 1024, MODEM_56K, samples=200
        ) / mean_transfer_time(S_SMALL, MODEM_56K, samples=200)
        highbw_ratio = compare_sizes(
            size_kb * 1024, S_SMALL, HIGH_BANDWIDTH
        ).rounds_ratio
        rows.append([f"{size_kb} KB", f"{modem_ratio:.1f}", f"{highbw_ratio:.1f}"])
    emit(
        "latency_sweep",
        render_table(
            ["document size", "modem L1/L2", "high-bw rounds ratio"],
            rows,
            title="latency gain vs document size (1 KB delta)",
        ),
    )
    ratios = [float(r[1]) for r in rows]
    assert ratios == sorted(ratios), "latency gain must grow with size"
    benchmark(lambda: compare_sizes(S_LARGE, S_SMALL, HIGH_BANDWIDTH))
