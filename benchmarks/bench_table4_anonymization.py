"""Table IV — base-file and delta sizes under anonymization.

Paper Table IV (bytes):

    M | N  | base (plain) | base (anon) | delta (plain) | delta (anon)
    2 | 5  | 84213        | 73434       | 5224          | 6520
    4 | 12 | 84213        | 72714       | 5224          | 6097
    4 | 8  | 84213        | 71090       | 5224          | 6505

The shape: anonymization shrinks the base-file by ~13-16 % and grows the
average delta only slightly ("anonymization is achieved at a minimal
cost") — and, of course, removes all private data.

We rebuild the experiment on one class of an ~84 KB personalized page:
anonymize the base against N distinct users' documents at threshold M,
then measure average deltas over a pool of fresh documents against the
plain and anonymized bases.
"""

import random

import pytest
from _util import emit, once

from repro.core.anonymize import Anonymizer
from repro.core.config import AnonymizationConfig
from repro.delta import VdeltaEncoder, encoded_size
from repro.metrics import render_table
from repro.origin import SiteSpec, SyntheticSite, find_card_numbers, profile_for

LEVELS = [(2, 5), (4, 12), (4, 8)]
PAPER_ROWS = [
    (2, 5, 84213, 73434, 5224, 6520),
    (4, 12, 84213, 72714, 5224, 6097),
    (4, 8, 84213, 71090, 5224, 6505),
]
POOL_SIZE = 30


def make_site() -> SyntheticSite:
    """A page sized like the paper's 84 KB base-file."""
    return SyntheticSite(
        SiteSpec(
            name="www.t4.example",
            categories=("portal",),
            products_per_category=1,
            header_bytes=8000,
            skeleton_bytes=40000,
            detail_bytes=24000,
            dynamic_bytes=6000,
            personal_bytes=3000,
            private_page_fraction=1.0,
        )
    )


def render_for(site, user: str, now: float) -> bytes:
    page = site.all_pages()[0]
    return site.render(
        page, now, user_id=user, profile=profile_for(user)
    )


def run_table4() -> list[list[object]]:
    site = make_site()
    encoder = VdeltaEncoder()
    base = render_for(site, "owner", 0.0)

    def delta(base_doc: bytes, target: bytes) -> int:
        return encoded_size(encoder.encode(base_doc, target).instructions, len(base_doc))

    rng = random.Random(44)
    pool = [
        render_for(site, f"pool{i}", rng.uniform(0, 7200)) for i in range(POOL_SIZE)
    ]
    plain_delta = sum(delta(base, doc) for doc in pool) / POOL_SIZE

    rows = []
    for m, n in LEVELS:
        config = AnonymizationConfig(enabled=True, documents=n, min_count=m)
        anonymizer = Anonymizer(base, config, encoder=encoder, owner_user="owner")
        for i in range(n):
            user = f"anon{m}_{n}_{i}"
            anonymizer.observe(render_for(site, user, rng.uniform(0, 7200)), user)
        anonymized = anonymizer.anonymized
        assert anonymized is not None
        assert not find_card_numbers(anonymized), "private data survived!"
        anon_delta = sum(delta(anonymized, doc) for doc in pool) / POOL_SIZE
        rows.append(
            [m, n, len(base), len(anonymized), round(plain_delta), round(anon_delta)]
        )
    return rows


def bench_table4_levels(benchmark):
    rows = once(benchmark, run_table4)
    paper_table = render_table(
        ["M", "N", "base (plain)", "base (anon)", "delta (plain)", "delta (anon)"],
        [list(r) for r in PAPER_ROWS],
        title="Table IV (paper, bytes)",
    )
    measured_table = render_table(
        ["M", "N", "base (plain)", "base (anon)", "delta (plain)", "delta (anon)"],
        rows,
        title="Table IV (measured, bytes)",
    )
    emit("table4_anonymization", paper_table + "\n\n" + measured_table)

    for m, n, base_plain, base_anon, delta_plain, delta_anon in rows:
        # anonymized base is smaller, but not gutted
        assert 0.6 * base_plain < base_anon < base_plain
        # deltas grow, but only modestly ("minimal cost"): well under 2x
        assert delta_plain <= delta_anon < 2.0 * delta_plain, (m, n)
