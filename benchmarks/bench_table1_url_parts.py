"""Table I — URL-parts for differently organized web-sites.

Paper Table I:

    URL                               | hint-part    | rest
    www.foo.com/laptops?id=100        | laptops      | id=100
    www.foo.com/?dept=laptops&id=100  | dept=laptops | id=100
    www.foo.com/laptops/100           | laptops      | 100

The benchmark regenerates the table through the partitioning machinery and
times the partition operation itself (it runs once per never-seen URL on
the delta-server's hot path).
"""

from _util import emit

from repro.metrics import render_table
from repro.url import RuleBook, heuristic_partition

PAPER_ROWS = [
    ("www.foo.com/laptops?id=100", "laptops", "id=100"),
    ("www.foo.com/?dept=laptops&id=100", "dept=laptops", "id=100"),
    ("www.foo.com/laptops/100", "laptops", "100"),
]


def bench_table1_partition(benchmark):
    """Regenerate Table I and time URL partitioning."""
    rows = []
    for url, expected_hint, expected_rest in PAPER_ROWS:
        parts = heuristic_partition(url)
        rows.append([url, parts.hint, parts.rest])
        assert parts.hint == expected_hint, url
        assert parts.rest == expected_rest, url

    emit(
        "table1_url_parts",
        render_table(
            ["URL", "hint-part", "rest"],
            rows,
            title="Table I reproduction (paper values match exactly)",
        ),
    )

    book = RuleBook()
    book.add_rule("www.foo.com", r"(?P<hint>[^/?]+)\?(?P<rest>.*)")
    urls = [row[0] for row in PAPER_ROWS] * 10

    def partition_all():
        for url in urls:
            book.partition(url)

    benchmark(partition_all)
