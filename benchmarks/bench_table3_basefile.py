"""Table III — average delta sizes per base-file selection algorithm.

Paper Table III (five random permutations of one class's request sequence):

    permutation | First Response | Randomized | Online Optimal
    1           | 1704           | 1559       | 1406
    2           | 1774           | 1636       | 1540
    3           | 1785           | 1599       | 1515
    4           | 1876           | 1626       | 1542
    5           | 2025           | 1679       | 1575

The randomized algorithm (8 samples, p = 0.2 — the paper's own settings)
tracks the online optimum closely, and both beat first-response.  We
regenerate the experiment on one synthetic class: the request sequence is
personalized/temporal variants of one page, the metric is the size of the
delta between each requested document and the policy's base-file at that
moment, averaged over the sequence.
"""

import random

import pytest
from _util import emit, once

from repro.core.base_file import (
    FirstResponsePolicy,
    OnlineOptimalPolicy,
    RandomizedPolicy,
    offline_best,
)
from repro.core.config import BaseFileConfig
from repro.delta import LightEstimator, VdeltaEncoder, encoded_size
from repro.metrics import render_table
from repro.origin import SiteSpec, SyntheticSite, profile_for

SEQUENCE_LENGTH = 120
PERMUTATIONS = 5

PAPER_ROWS = [
    (1, 1704, 1559, 1406),
    (2, 1774, 1636, 1540),
    (3, 1785, 1599, 1515),
    (4, 1876, 1626, 1542),
    (5, 2025, 1679, 1575),
]


def class_documents() -> list[bytes]:
    """One class's request stream: per-user, per-epoch variants of a page.

    A 20 % minority of requests hit a sibling page that the grouping put in
    the same class (close enough to match, farther from the majority).  The
    paper's point — "the performance of the scheme that uses the first
    response as a base-file can be very bad" depending on the sequence —
    needs exactly this heterogeneity: a permutation that *starts* with a
    minority document saddles first-response with an off-center base
    forever, while the randomized algorithm adapts.
    """
    site = SyntheticSite(
        SiteSpec(
            name="www.t3.example",
            categories=("news",),
            products_per_category=2,
            header_bytes=2500,
            skeleton_bytes=9000,
            detail_bytes=5000,
            dynamic_bytes=1800,
            personal_bytes=900,
        )
    )
    majority, minority = site.all_pages()
    rng = random.Random(33)
    docs = []
    for _ in range(SEQUENCE_LENGTH):
        user = f"u{rng.randrange(12)}"
        now = rng.uniform(0, 4 * 3600)
        page = minority if rng.random() < 0.2 else majority
        docs.append(
            site.render(page, now, user_id=user, profile=profile_for(user))
        )
    return docs


def mean_online_delta(policy, documents, measure) -> float:
    """Feed the sequence; average the delta each request would have cost.

    Mirrors the delta-server: the class is born with the first response as
    its base-file, and the policy replaces it when it has a candidate.
    """
    total = 0
    first: bytes | None = None
    for document in documents:
        base = policy.current() or first
        if base is None:
            total += len(document)  # the very first request is a full response
        else:
            total += measure(base, document)
        policy.observe(document)
        if first is None:
            first = document
    return total / len(documents)


def run_table3() -> list[list[object]]:
    documents = class_documents()
    encoder = VdeltaEncoder()
    estimator = LightEstimator()

    def full_delta(base: bytes, target: bytes) -> int:
        return encoded_size(encoder.encode(base, target).instructions, len(base))

    def light_delta(base: bytes, target: bytes) -> int:
        return estimator.estimate(base, target)

    rows = []
    for perm in range(1, PERMUTATIONS + 1):
        rng = random.Random(perm)
        sequence = list(documents)
        rng.shuffle(sequence)
        config = BaseFileConfig(sample_probability=0.2, capacity=8)
        policies = {
            "first": FirstResponsePolicy(),
            # policies make decisions with the cheap light differ, exactly
            # as the delta-server does
            "randomized": RandomizedPolicy(config, light_delta, random.Random(perm)),
            "optimal": OnlineOptimalPolicy(light_delta, max_documents=SEQUENCE_LENGTH),
        }
        row = [perm]
        for policy in policies.values():
            row.append(round(mean_online_delta(policy, sequence, full_delta)))
        rows.append(row)
    return rows


def bench_table3_policies(benchmark):
    rows = once(benchmark, run_table3)
    paper_table = render_table(
        ["perm", "First Response", "Randomized", "Online Optimal"],
        [list(r) for r in PAPER_ROWS],
        title="Table III (paper, bytes)",
    )
    measured_table = render_table(
        ["perm", "First Response", "Randomized", "Online Optimal"],
        rows,
        title="Table III (measured, bytes)",
    )
    emit("table3_basefile", paper_table + "\n\n" + measured_table)

    firsts = [r[1] for r in rows]
    randoms = [r[2] for r in rows]
    optimals = [r[3] for r in rows]
    # Shape: optimal <= randomized <= first-response on average, and the
    # randomized scheme is much closer to optimal than to first-response.
    assert sum(optimals) <= sum(randoms) <= sum(firsts)
    gap_to_optimal = sum(randoms) - sum(optimals)
    gap_to_first = sum(firsts) - sum(randoms)
    assert gap_to_optimal <= gap_to_first * 1.5


def bench_table3_offline_reference(benchmark):
    """Offline optimum over the same pool (the paper's 'ideal' scheme)."""
    documents = class_documents()[:40]
    estimator = LightEstimator()

    def light_delta(base: bytes, target: bytes) -> int:
        return estimator.estimate(base, target)

    index, best = once(benchmark, lambda: offline_best(documents, light_delta))
    assert 0 <= index < len(documents)
    mean = sum(
        light_delta(best, d) for d in documents if d is not best
    ) / (len(documents) - 1)
    emit(
        "table3_offline_reference",
        f"offline-optimal base-file: document #{index}, "
        f"mean (light) delta {mean:.0f} bytes over {len(documents)} documents",
    )
