"""Engine concurrency benchmark: serialized vs sharded delta-engine.

The seed engine took one global lock across the whole request pipeline —
origin fetch included — so N worker threads convoyed into an origin-bound
single file line.  The sharded engine (per-class locks, off-lock origin
fetch, snapshot-encode-commit delta generation) lets requests for
different classes overlap.  This benchmark drives both modes of the
*same* engine code with N closed-loop threads over M document classes and
a configurable origin delay, and reports:

* throughput (requests/s) and latency percentiles (p50/p99) per mode;
* the lock-wait share of total pipeline time (from the per-request
  ``X-Stage-Times`` instrumentation);
* the sharded/serialized speedup — the headline number;
* a byte-parity check: a fresh engine per mode replays the identical
  trace single-threaded and every response (status, body bytes, delta
  headers) must match exactly, proving sharding changed scheduling, not
  outputs.

Results land in machine-readable form in
``benchmarks/results/BENCH_engine.json`` (override with ``--out``).  Run
standalone::

    python benchmarks/bench_engine_concurrency.py --smoke

Exit status is non-zero when the sharded engine fails its gate: faster
than serialized at all in ``--smoke`` mode, >= 2x on the full run (8
threads, 8 classes, 5 ms origin — the ISSUE's acceptance workload).
"""

from __future__ import annotations

import argparse
import json
import random
import string
import sys
import threading
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_...py` directly
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer, parse_stage_times
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_STAGE_TIMES,
    Headers,
    Request,
    Response,
)

INDEX_HEADER = "X-Bench-Index"
WARM_USERS = 4  # enough distinct users to drive anonymization to READY

DEFAULT_THREADS = 8
DEFAULT_CLASSES = 8
DEFAULT_REQUESTS_PER_THREAD = 50
DEFAULT_ORIGIN_DELAY = 0.005
FULL_GATE = 2.0  # ISSUE acceptance: >= 2x on the default workload


# -- synthetic corpus ---------------------------------------------------------


def _make_tokens(rng: random.Random, count: int) -> list[str]:
    return [
        "".join(rng.choices(string.ascii_lowercase, k=8)) for _ in range(count)
    ]


def build_corpus(
    classes: int, visits_per_class: int, seed: int, tokens_per_doc: int = 700
) -> tuple[list[str], list[list[bytes]], list[list[bytes]]]:
    """Per class: a URL, warm-up documents, and per-visit documents.

    Documents of one class share ~97% of their tokens with the class base
    (delta-friendly, like successive renders of one dynamic page);
    classes share nothing (so they stay distinct classes).
    """
    rng = random.Random(seed)
    urls: list[str] = []
    warm_docs: list[list[bytes]] = []
    visit_docs: list[list[bytes]] = []
    for c in range(classes):
        base = _make_tokens(rng, tokens_per_doc)
        urls.append(f"www.bench{c}.example/page")

        def variant() -> bytes:
            tokens = list(base)
            for _ in range(max(1, tokens_per_doc // 33)):
                tokens[rng.randrange(tokens_per_doc)] = "".join(
                    rng.choices(string.ascii_lowercase, k=8)
                )
            return (" ".join(tokens)).encode()

        warm_docs.append([variant() for _ in range(WARM_USERS + 1)])
        visit_docs.append([variant() for _ in range(visits_per_class)])
    return urls, warm_docs, visit_docs


def build_trace(
    urls: list[str], visit_docs: list[list[bytes]], total_requests: int
) -> list[tuple[str, bytes]]:
    """Round-robin over classes: request i hits class ``i % M``."""
    classes = len(urls)
    return [
        (urls[i % classes], visit_docs[i % classes][i // classes])
        for i in range(total_requests)
    ]


# -- engine under test --------------------------------------------------------


def make_engine(
    mode: str, documents: dict[int, bytes], origin_delay: float
) -> DeltaServer:
    def fetch(request: Request, now: float) -> Response:
        if origin_delay:
            time.sleep(origin_delay)
        index = int(request.headers.get(INDEX_HEADER, "-1"))
        return Response(status=200, body=documents[index])

    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(documents=2, min_count=1),
        engine_mode=mode,
        seed=7,
    )
    return DeltaServer(fetch, config)


def _request(url: str, index: int, user: str, ref: str | None) -> Request:
    headers = Headers({INDEX_HEADER: str(index)})
    if ref:
        headers.set(HEADER_ACCEPT_DELTA, ref)
    return Request(url=url, headers=headers, cookies={"uid": user})


def warm(
    engine: DeltaServer,
    urls: list[str],
    warm_docs: list[list[bytes]],
    documents: dict[int, bytes],
) -> dict[str, str]:
    """Single-threaded warm-up: form classes, finish anonymization, and
    learn each class's current base ref (what a steady-state client holds)."""
    refs: dict[str, str] = {}
    index = -1
    for url, docs in zip(urls, warm_docs):
        for u, doc in enumerate(docs):
            documents[index] = doc
            response = engine.handle(
                _request(url, index, f"warm{u}", refs.get(url)), 0.0
            )
            index -= 1
            ref = response.base_file_ref
            if ref is not None and not response.is_delta:
                refs[url] = ref
        if url not in refs:
            raise RuntimeError(f"warm-up failed to produce a base ref for {url}")
    return refs


# -- measurement --------------------------------------------------------------


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[position]


def run_mode(
    mode: str,
    urls: list[str],
    warm_docs: list[list[bytes]],
    trace: list[tuple[str, bytes]],
    threads: int,
    origin_delay: float,
) -> dict:
    documents: dict[int, bytes] = {i: doc for i, (_, doc) in enumerate(trace)}
    engine = make_engine(mode, documents, origin_delay)
    refs = warm(engine, urls, warm_docs, documents)

    latencies: list[list[float]] = [[] for _ in range(threads)]
    lock_wait = [0.0] * threads
    stage_total = [0.0] * threads
    barrier = threading.Barrier(threads + 1)

    def worker(tid: int) -> None:
        my_latencies = latencies[tid]
        barrier.wait()
        for i in range(tid, len(trace), threads):
            url, _doc = trace[i]
            request = _request(url, i, f"user{tid}", refs.get(url))
            started = time.perf_counter()
            response = engine.handle(request, i * 0.01)
            my_latencies.append(time.perf_counter() - started)
            assert response.status == 200, response.status
            ref = response.base_file_ref
            if ref is not None:
                refs[url] = ref  # racy last-write-wins, like real clients
            stages = parse_stage_times(response.headers.get(HEADER_STAGE_TIMES))
            lock_wait[tid] += stages.get("lock_wait", 0.0)
            stage_total[tid] += sum(stages.values())

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for thread in pool:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - wall_start

    stats = engine.stats
    assert stats.requests == len(trace) + len(urls) * (WARM_USERS + 1)
    assert (
        stats.deltas_served + stats.full_served + stats.passthrough
        == stats.requests
    )
    flat = sorted(lat for per_thread in latencies for lat in per_thread)
    total_stage = sum(stage_total)
    return {
        "mode": mode,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(trace) / wall, 2),
        "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
        "lock_wait_share": round(
            sum(lock_wait) / total_stage if total_stage else 0.0, 4
        ),
        "deltas_served": stats.deltas_served,
        "full_served": stats.full_served,
        "commit_conflicts": stats.commit_conflicts,
        "savings": round(stats.savings, 4),
    }


# -- byte parity --------------------------------------------------------------


def replay_fingerprint(
    mode: str,
    urls: list[str],
    warm_docs: list[list[bytes]],
    trace: list[tuple[str, bytes]],
) -> list[tuple]:
    """Single-threaded replay of warm-up + trace on a fresh engine.

    Returns one (status, body, X-Delta, X-Delta-Base) tuple per request;
    identical input order means both engine modes must produce identical
    tuples — sharding must change scheduling, never bytes.
    """
    documents: dict[int, bytes] = {i: doc for i, (_, doc) in enumerate(trace)}
    engine = make_engine(mode, documents, origin_delay=0.0)
    refs = warm(engine, urls, warm_docs, documents)
    fingerprint: list[tuple] = []
    for i, (url, _doc) in enumerate(trace):
        response = engine.handle(_request(url, i, "replay", refs.get(url)), i * 0.01)
        ref = response.base_file_ref
        if ref is not None:
            refs[url] = ref
        fingerprint.append(
            (
                response.status,
                response.body,
                response.delta_base_ref,
                response.base_file_ref,
            )
        )
    return fingerprint


# -- harness ------------------------------------------------------------------


def run_benchmark(
    threads: int = DEFAULT_THREADS,
    classes: int = DEFAULT_CLASSES,
    requests_per_thread: int = DEFAULT_REQUESTS_PER_THREAD,
    origin_delay: float = DEFAULT_ORIGIN_DELAY,
    smoke: bool = False,
    seed: int = 20020704,
) -> dict:
    if smoke:
        requests_per_thread = min(requests_per_thread, 20)
    total = threads * requests_per_thread
    visits_per_class = -(-total // classes)
    urls, warm_docs, visit_docs = build_corpus(classes, visits_per_class, seed)
    trace = build_trace(urls, visit_docs, total)

    serialized = run_mode("serialized", urls, warm_docs, trace, threads, origin_delay)
    sharded = run_mode("sharded", urls, warm_docs, trace, threads, origin_delay)
    speedup = (
        sharded["throughput_rps"] / serialized["throughput_rps"]
        if serialized["throughput_rps"]
        else 0.0
    )

    serial_fp = replay_fingerprint("serialized", urls, warm_docs, trace)
    sharded_fp = replay_fingerprint("sharded", urls, warm_docs, trace)
    parity = serial_fp == sharded_fp

    gate = 1.0 if smoke else FULL_GATE
    return {
        "workload": {
            "threads": threads,
            "classes": classes,
            "requests": total,
            "origin_delay_s": origin_delay,
            "smoke": smoke,
        },
        "serialized": serialized,
        "sharded": sharded,
        "speedup": round(speedup, 2),
        "gate": gate,
        "gate_passed": speedup > gate if smoke else speedup >= gate,
        "byte_parity": {
            "requests_compared": len(serial_fp),
            "identical": parity,
        },
    }


def render(result: dict) -> str:
    lines = [
        f"workload: {result['workload']}",
        "",
        f"{'mode':<12} {'rps':>9} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'lock-wait':>10} {'deltas':>7} {'conflicts':>10}",
    ]
    for mode in ("serialized", "sharded"):
        r = result[mode]
        lines.append(
            f"{mode:<12} {r['throughput_rps']:>9.1f} {r['p50_ms']:>9.2f} "
            f"{r['p99_ms']:>9.2f} {r['lock_wait_share']:>10.1%} "
            f"{r['deltas_served']:>7} {r['commit_conflicts']:>10}"
        )
    lines.append("")
    lines.append(
        f"speedup: {result['speedup']}x (gate {result['gate']}x, "
        f"{'PASS' if result['gate_passed'] else 'FAIL'}); "
        f"byte parity over {result['byte_parity']['requests_compared']} "
        f"requests: {'identical' if result['byte_parity']['identical'] else 'DIVERGED'}"
    )
    return "\n".join(lines)


def bench_engine_concurrency(benchmark) -> None:
    """Pytest-benchmark entry point (smoke-sized)."""
    from _util import emit, once

    result = once(benchmark, lambda: run_benchmark(smoke=True))
    emit("engine_concurrency", render(result))
    out = Path(__file__).parent / "results" / "BENCH_engine.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    assert result["byte_parity"]["identical"]
    assert result["gate_passed"], (
        f"sharded speedup {result['speedup']}x below gate {result['gate']}x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS)
    parser.add_argument("--classes", type=int, default=DEFAULT_CLASSES)
    parser.add_argument(
        "--requests-per-thread", type=int, default=DEFAULT_REQUESTS_PER_THREAD
    )
    parser.add_argument(
        "--origin-delay", type=float, default=DEFAULT_ORIGIN_DELAY,
        help="simulated origin render time per fetch, seconds",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small run; gate is 'sharded beats serialized at all' "
        "instead of the full 2x",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_engine.json",
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        threads=args.threads,
        classes=args.classes,
        requests_per_thread=args.requests_per_thread,
        origin_delay=args.origin_delay,
        smoke=args.smoke,
    )
    print(render(result))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    if not result["byte_parity"]["identical"]:
        print("FAIL: sharded output diverged from serialized", file=sys.stderr)
        return 1
    if not result["gate_passed"]:
        print(
            f"FAIL: speedup {result['speedup']}x below gate {result['gate']}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
