"""Persistent store benchmark: chain compression, commit cost, recovery.

The store persists every base-file version, so its on-disk footprint is
the price of warm restarts.  Version-to-version deltas with a full
snapshot every K versions (``snapshot_every``) are the scheme that makes
that price acceptable: consecutive versions of a dynamic page share
almost all their bytes, exactly the redundancy the vdelta kernel strips.

Measured on one synthetic corpus (C classes x V versions, each version a
small mutation of its predecessor — the paper's dynamic-page shape):

* **chain efficiency** — live pack bytes at K=8 vs the K=1 baseline
  (a full snapshot per version).  Gate: K=8 <= 50% of K=1 on the full
  run (any saving in ``--smoke``);
* **commit throughput** — fsync'd commits/s at K=8, the write-path cost
  a serving engine actually pays;
* **recovery** — reopen the K=8 store, report ``recovery_ms`` and
  re-materialize **every** committed version, asserting byte-identical
  round trips (the crash-safety contract, measured not mocked).

Results land in ``benchmarks/results/BENCH_store.json``.  Run standalone::

    python benchmarks/bench_store.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__":  # allow `python benchmarks/bench_...py` directly
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.store import Store

DEFAULT_CLASSES = 8
DEFAULT_VERSIONS = 32
SMOKE_CLASSES = 3
SMOKE_VERSIONS = 12
FULL_RATIO_GATE = 0.50  # ISSUE acceptance: K=8 bytes <= 50% of K=1


def build_corpus(classes: int, versions: int, seed: int) -> dict[str, list[bytes]]:
    """Per-class version histories of a mutating dynamic page.

    Each version rewrites the handful of volatile spans (prices, stock
    counts, a timestamp banner) inside ~8 KB of stable page shell —
    the document shape Table 1 of the paper measures deltas against.
    """
    rng = random.Random(seed)
    corpus: dict[str, list[bytes]] = {}
    shell = [
        f'<div class="row"><span class="sku">sku-{i:04d}</span>'
        f"<p>{'stable catalog prose segment ' * 6}</p>"
        f'<span class="price">PRICE-{i}</span>'
        f'<span class="stock">STOCK-{i}</span></div>'
        for i in range(24)
    ]
    for c in range(classes):
        class_id = f"cls{c + 1}"
        history: list[bytes] = []
        page = list(shell)
        for v in range(1, versions + 1):
            for _ in range(rng.randint(2, 5)):  # a few volatile spans churn
                i = rng.randrange(len(page))
                page[i] = (
                    page[i]
                    .split('<span class="price">')[0]
                    + f'<span class="price">${rng.randint(10, 999)}.{rng.randint(0, 99):02d}</span>'
                    + f'<span class="stock">{rng.randint(0, 500)} left</span></div>'
                )
            body = (
                f"<html><head><title>{class_id}</title></head><body>"
                f"<p>generated for revision {v}</p>"
                + "".join(page)
                + "</body></html>"
            ).encode()
            history.append(body)
        corpus[class_id] = history
    return corpus


def commit_corpus(
    state_dir: Path, corpus: dict[str, list[bytes]], snapshot_every: int
) -> tuple[Store, float]:
    """Commit the whole corpus (fsync on); returns (store, seconds)."""
    store = Store.open(state_dir, snapshot_every=snapshot_every)
    for class_id in corpus:
        store.add_class(class_id, "www.bench.example", class_id)
    started = time.perf_counter()
    for class_id, history in corpus.items():
        for v, body in enumerate(history, start=1):
            store.commit_base(class_id, v, body)
    return store, time.perf_counter() - started


def run_experiment(classes: int, versions: int, seed: int) -> dict:
    corpus = build_corpus(classes, versions, seed)
    doc_bytes = sum(len(b) for h in corpus.values() for b in h)
    commits = classes * versions

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        tmp_path = Path(tmp)

        # K=1 baseline: a (compressed) full snapshot per version.
        baseline, _ = commit_corpus(tmp_path / "k1", corpus, snapshot_every=1)
        baseline_bytes = baseline.live_pack_bytes
        baseline.close()

        # K=8: bounded delta chains, the store's default commit path.
        chained, commit_seconds = commit_corpus(
            tmp_path / "k8", corpus, snapshot_every=8
        )
        chained_bytes = chained.live_pack_bytes
        snap = chained.snapshot()
        chained.close()

        # Recovery: reopen and round-trip EVERY version byte-identically.
        started = time.perf_counter()
        reopened = Store.open(tmp_path / "k8")
        reopen_seconds = time.perf_counter() - started
        verified = 0
        for class_id, history in corpus.items():
            for v, body in enumerate(history, start=1):
                assert reopened.materialize(class_id, v) == body, (
                    f"{class_id} v{v}: restart round trip not byte-identical"
                )
                verified += 1
        recovery_ms = reopened.stats.recovery_ms
        warm = reopened.stats.warm_start
        reopened.close()

    ratio = chained_bytes / baseline_bytes if baseline_bytes else 1.0
    return {
        "workload": {
            "classes": classes,
            "versions_per_class": versions,
            "commits": commits,
            "document_bytes": doc_bytes,
            "seed": seed,
        },
        "chain": {
            "snapshot_every": 8,
            "live_pack_bytes": chained_bytes,
            "full_records": snap["full_records"],
            "delta_records": snap["delta_records"],
            "max_chain_length": snap["max_chain_length"],
        },
        "baseline_full_per_version": {
            "snapshot_every": 1,
            "live_pack_bytes": baseline_bytes,
        },
        "chain_vs_full_ratio": round(ratio, 4),
        "commit": {
            "seconds": round(commit_seconds, 4),
            "commits_per_second": round(commits / commit_seconds, 1)
            if commit_seconds
            else 0.0,
            "fsync": True,
        },
        "recovery": {
            "reopen_seconds": round(reopen_seconds, 4),
            "recovery_ms": round(recovery_ms, 3),
            "warm_start": warm,
            "versions_round_tripped": verified,
            "byte_identical": True,  # asserted above; reaching here means it held
        },
    }


def run_benchmark(
    classes: int = DEFAULT_CLASSES,
    versions: int = DEFAULT_VERSIONS,
    smoke: bool = False,
    seed: int = 42,
) -> dict:
    if smoke:
        classes = min(classes, SMOKE_CLASSES)
        versions = min(versions, SMOKE_VERSIONS)
    result = run_experiment(classes, versions, seed)
    ratio_gate = 1.0 if smoke else FULL_RATIO_GATE
    result["gates"] = {
        "ratio_gate": ratio_gate,
        "smoke": smoke,
        "passed": (
            result["chain_vs_full_ratio"] < ratio_gate
            and result["recovery"]["warm_start"]
            and result["recovery"]["byte_identical"]
        ),
    }
    return result


def render(result: dict) -> str:
    w, chain, commit = result["workload"], result["chain"], result["commit"]
    recovery, gates = result["recovery"], result["gates"]
    baseline = result["baseline_full_per_version"]
    return "\n".join(
        [
            f"workload: {w}",
            "",
            f"{'layout':<24} {'live pack bytes':>16} {'records':>16}",
            f"{'full per version (K=1)':<24} {baseline['live_pack_bytes']:>16,} "
            f"{w['commits']:>11} full",
            f"{'delta chains (K=8)':<24} {chain['live_pack_bytes']:>16,} "
            f"{chain['full_records']:>4} full + {chain['delta_records']} delta",
            "",
            f"chain bytes / full bytes: {result['chain_vs_full_ratio']:.1%} "
            f"(gate < {gates['ratio_gate']:.0%}); "
            f"max chain length {chain['max_chain_length']} (bound 8)",
            f"commits: {w['commits']} in {commit['seconds']}s with fsync "
            f"({commit['commits_per_second']}/s)",
            f"recovery: reopen {recovery['reopen_seconds']}s "
            f"(recovery {recovery['recovery_ms']}ms), "
            f"{recovery['versions_round_tripped']} versions byte-identical",
            f"gate: {'PASS' if gates['passed'] else 'FAIL'}",
        ]
    )


def bench_store(benchmark) -> None:
    """Pytest-benchmark entry point (smoke-sized)."""
    from _util import emit, once

    result = once(benchmark, lambda: run_benchmark(smoke=True))
    emit("store", render(result))
    out = Path(__file__).parent / "results" / "BENCH_store.json"
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    assert result["gates"]["passed"], render(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--classes", type=int, default=DEFAULT_CLASSES)
    parser.add_argument("--versions", type=int, default=DEFAULT_VERSIONS)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus; the 50%% ratio gate relaxes to 'any saving'",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_store.json",
        help="where to write the machine-readable result",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        classes=args.classes, versions=args.versions, smoke=args.smoke,
        seed=args.seed,
    )
    print(render(result))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    if not result["gates"]["passed"]:
        print("FAIL: store gates not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
