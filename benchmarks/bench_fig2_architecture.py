"""Figure 2 — transparent deployment architecture, exercised end-to-end.

Fig. 2 places the delta-server next to the web-server; clients, proxies,
and the origin are unmodified.  Two properties to demonstrate:

* **transparency + correctness**: replaying a trace through client ->
  proxy -> delta-server -> origin reconstructs every document byte-for-
  byte (verified against direct origin renders);
* **proxy synergy** (Section VI-B): anonymized base-files are cachable, so
  a shared proxy absorbs base-file distribution — upstream base-file
  traffic shrinks when the proxy is present.
"""

from _util import emit, once, scaled

from repro.core import AnonymizationConfig, DeltaServerConfig
from repro.metrics import fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import Simulation, SimulationConfig
from repro.workload import WorkloadSpec, generate_workload


def replay(proxy_enabled: bool, verify: bool):
    site = SyntheticSite(
        SiteSpec(
            name="www.fig2.example",
            categories=("laptops", "desktops"),
            products_per_category=3,
            dynamic_bytes=2200,
        )
    )
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name="fig2",
            requests=scaled(1200),
            users=15,
            duration=2 * 3600.0,
            revisit_bias=0.7,
        ),
    )
    config = SimulationConfig(
        proxy_enabled=proxy_enabled,
        verify=verify,
        delta=DeltaServerConfig(
            anonymization=AnonymizationConfig(documents=3, min_count=1)
        ),
    )
    simulation = Simulation([site], config)
    return simulation, simulation.run(workload)


def bench_fig2_correctness(benchmark):
    """Full-stack replay with byte-for-byte verification enabled."""
    _, report = once(benchmark, lambda: replay(proxy_enabled=True, verify=True))
    emit(
        "fig2_correctness",
        f"replayed {report.requests} requests through client -> proxy -> "
        f"delta-server -> origin\n"
        f"verify failures: {report.verify_failures} (every reconstruction "
        f"matches a direct origin render)\n"
        f"bandwidth savings: {report.bandwidth.savings:.1%}, "
        f"deltas: {report.bandwidth.deltas_served}, "
        f"fulls: {report.bandwidth.full_served}",
    )
    assert report.verify_failures == 0
    assert report.bandwidth.deltas_served > 0


def bench_fig2_proxy_synergy(benchmark):
    """Base-file distribution with vs without a shared proxy-cache."""

    def both():
        return replay(True, False), replay(False, False)

    (with_sim, with_proxy), (_, without_proxy) = once(benchmark, both)
    rows = [
        [
            "with proxy-cache",
            with_proxy.bandwidth.base_file_upstream_bytes // 1024,
            with_proxy.bandwidth.base_file_downstream_bytes // 1024,
            fmt_pct(with_proxy.proxy_hit_rate),
            fmt_pct(with_proxy.bandwidth.savings),
        ],
        [
            "without proxy-cache",
            without_proxy.bandwidth.base_file_upstream_bytes // 1024,
            without_proxy.bandwidth.base_file_downstream_bytes // 1024,
            "-",
            fmt_pct(without_proxy.bandwidth.savings),
        ],
    ]
    emit(
        "fig2_proxy_synergy",
        render_table(
            [
                "configuration",
                "base KB from server",
                "base KB to clients",
                "proxy hit rate",
                "savings",
            ],
            rows,
            title="Fig. 2 / Section VI-B: cachable base-files and proxies",
        ),
    )
    # The proxy absorbs most base-file distribution: server-side base
    # traffic is much lower with the proxy in place.
    assert (
        with_proxy.bandwidth.base_file_upstream_bytes
        < 0.6 * without_proxy.bandwidth.base_file_upstream_bytes
    )
