"""Ablations over the design choices the paper calls out.

* footnote 2 / Section III: the *light* differ for grouping estimates
  (larger chunks, forward-only) — how much cheaper, how much less precise?
* footnote 3 / Section IV: eviction variants for the randomized base-file
  store (worst, periodic-random, two-set);
* Section III: the ``a·N`` popularity/random probe split;
* Section IV: the rebase-timeout that throttles group-rebases.
"""

import random
import time

import pytest
from _util import emit, once, scaled

from repro.core import AnonymizationConfig, DeltaServerConfig
from repro.core.base_file import RandomizedPolicy
from repro.core.config import BaseFileConfig, EvictionVariant, GroupingConfig
from repro.delta import LightEstimator, VdeltaEncoder, delta_size
from repro.metrics import fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite, profile_for
from repro.simulation import Simulation, SimulationConfig
from repro.workload import WorkloadSpec, generate_workload


def document_pool(count: int = 40) -> list[bytes]:
    site = SyntheticSite(
        SiteSpec(
            name="www.abl.example",
            categories=("news",),
            products_per_category=2,
            header_bytes=2500,
            skeleton_bytes=9000,
            detail_bytes=5000,
        )
    )
    rng = random.Random(7)
    pages = site.all_pages()
    return [
        site.render(
            pages[0] if rng.random() < 0.8 else pages[1],
            rng.uniform(0, 7200),
            user_id=f"u{rng.randrange(10)}",
            profile=profile_for(f"u{rng.randrange(10)}"),
        )
        for _ in range(count)
    ]


def bench_ablation_light_vs_full(benchmark):
    """The light estimator: cost vs fidelity against the full differ."""
    docs = document_pool(12)
    base = docs[0]
    estimator = LightEstimator()
    encoder = VdeltaEncoder()
    light_index = estimator.index(base)
    full_index = encoder.index(base)

    def light_all():
        return [estimator.estimate_with_index(light_index, d) for d in docs[1:]]

    t0 = time.perf_counter()
    light_sizes = light_all()
    light_ms = (time.perf_counter() - t0) * 1000
    t0 = time.perf_counter()
    from repro.delta.codec import encoded_size

    full_sizes = [
        encoded_size(encoder.encode_with_index(full_index, d).instructions, len(base))
        for d in docs[1:]
    ]
    full_ms = (time.perf_counter() - t0) * 1000

    # Spearman rank correlation: does the light estimate order candidates
    # like the full differ does?  (grouping needs ordering + a threshold)
    def ranks(values):
        order = sorted(range(len(values)), key=values.__getitem__)
        rank = [0] * len(values)
        for position, index in enumerate(order):
            rank[index] = position
        return rank

    lr, fr = ranks(light_sizes), ranks(full_sizes)
    n = len(lr)
    spearman = 1 - 6 * sum((a - b) ** 2 for a, b in zip(lr, fr)) / (n * (n * n - 1))
    emit(
        "ablation_light_vs_full",
        render_table(
            ["differ", "total time (11 docs)", "mean estimate"],
            [
                ["full (4-byte chunks, fwd+bwd)", f"{full_ms:.1f} ms",
                 f"{sum(full_sizes) / len(full_sizes):.0f} B"],
                ["light (16-byte chunks, fwd)", f"{light_ms:.1f} ms",
                 f"{sum(light_sizes) / len(light_sizes):.0f} B"],
            ],
            title="footnote 2: light vs full differ for grouping estimates",
        )
        + f"\nSpearman rank correlation: {spearman:.2f} "
        f"(speedup {full_ms / max(light_ms, 1e-9):.1f}x)",
    )
    assert light_ms < full_ms  # the whole point of the light variant
    assert spearman > 0.5  # ordering preserved well enough for grouping
    for light, full in zip(light_sizes, full_sizes):
        assert light >= full * 0.6  # estimates upper-bound-ish, never wild

    benchmark(lambda: estimator.estimate_with_index(light_index, docs[1]))


@pytest.mark.parametrize("variant", list(EvictionVariant), ids=lambda v: v.value)
def bench_ablation_eviction_variant(benchmark, variant):
    """footnote 3: eviction variants pick comparably good base-files."""
    docs = document_pool(60)
    estimator = LightEstimator()

    def light(base: bytes, target: bytes) -> int:
        return estimator.estimate(base, target)

    def run():
        config = BaseFileConfig(
            sample_probability=0.4,
            capacity=6,
            eviction=variant,
            random_evict_period=3,
        )
        policy = RandomizedPolicy(config, light, random.Random(5))
        for doc in docs:
            policy.observe(doc)
        best = policy.current()
        return sum(light(best, d) for d in docs) / len(docs)

    mean_delta = once(benchmark, run)
    emit(
        f"ablation_eviction_{variant.value}",
        f"eviction={variant.value}: mean light-delta of chosen base over the "
        f"pool = {mean_delta:.0f} bytes",
    )
    # all variants should be in the same quality ballpark
    assert mean_delta < 6000


def bench_ablation_popularity_split(benchmark):
    """Section III: the a·N popularity/random probe split.

    Scenario where the split matters: many classes share one hint-part and
    the probe budget N is tight.  Requests are Zipf-skewed toward popular
    products, so probing popular classes first (a -> 1) finds the matching
    class within budget far more often than probing at random (a = 0) —
    the rationale for "first attempts to group the request into classes
    with many members".
    """
    site = SyntheticSite(
        SiteSpec(
            name="www.split.example",
            categories=("catalog",),
            products_per_category=12,
            header_bytes=1500,
            skeleton_bytes=2000,   # small shared part ...
            detail_bytes=12000,    # ... big product part: products do NOT group
        )
    )
    pages = site.all_pages()

    def run_split(popular_fraction: float):
        from repro.core.grouping import Grouper
        from repro.core.classes import DocumentClass
        from repro.core.base_file import FirstResponsePolicy
        from repro.url.rules import RuleBook
        from repro.delta.vdelta import VdeltaEncoder

        estimator = LightEstimator()
        encoder = VdeltaEncoder()
        counter = iter(range(1, 10_000))

        def factory(server, hint):
            return DocumentClass(
                class_id=f"c{next(counter)}",
                server=server,
                hint=hint,
                anonymization=AnonymizationConfig(enabled=False),
                policy=FirstResponsePolicy(),
                encoder=encoder,
                estimator=estimator,
            )

        grouper = Grouper(
            config=GroupingConfig(
                max_tries=3, popular_fraction=popular_fraction, match_threshold=0.3
            ),
            rulebook=RuleBook(),
            estimator=estimator,
            class_factory=factory,
            seed=11,
        )
        from repro.workload import ZipfSampler

        rng = random.Random(17)
        sampler = ZipfSampler(len(pages), alpha=1.3, rng=rng)
        # Seed 12 classes, one per product, with Zipf-skewed popularity
        # (page i popular in proportion to its request probability).
        for i, page in enumerate(pages):
            doc = site.render(page, 0.0)
            cls, created = grouper.classify(site.url_for(page), doc)
            if created:
                cls.adopt_base(doc, owner_user=None, now=0.0)
            cls.stats.hits += int(sampler.probability(i) * 400)
        # New session-URLs drawn from the same Zipf: each should match its
        # product's existing class within the N=3 probe budget.
        matched_before = grouper.stats.matched
        for trial in range(60):
            page = pages[sampler.sample()]
            url = site.url_for(page) + f"&sid=u{trial}"
            doc = site.render(page, 0.0, user_id=f"u{trial}")
            cls, created = grouper.classify(url, doc)
            if created:
                cls.adopt_base(doc, owner_user=None, now=0.0)
        return grouper.stats.matched - matched_before

    def run_all():
        return {a: run_split(a) for a in (0.0, 0.3, 1.0)}

    results = once(benchmark, run_all)
    rows = [[f"a = {a}", f"{matched}/60"] for a, matched in results.items()]
    emit(
        "ablation_popularity_split",
        render_table(
            ["probe split", "matches found (budget N=3 of 12 classes)"],
            rows,
            title="Section III: popularity-first probe ordering",
        ),
    )
    # Zipf-skewed requests: popularity-first probing beats random probing.
    assert results[1.0] >= results[0.0]


def bench_ablation_rebase_timeout(benchmark):
    """Section IV: the rebase-timeout throttles client-visible churn."""

    def run_timeout(timeout: float):
        site = SyntheticSite(
            SiteSpec(
                name="www.rb.example",
                categories=("news",),
                products_per_category=3,
                dynamic_bytes=2200,
            )
        )
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="rb",
                requests=scaled(1500),
                users=10,
                duration=3 * 3600.0,
                revisit_bias=0.75,
            ),
        )
        config = SimulationConfig(
            verify=False,
            delta=DeltaServerConfig(
                base_file=BaseFileConfig(rebase_timeout=timeout),
                anonymization=AnonymizationConfig(documents=3, min_count=1),
            ),
        )
        return Simulation([site], config).run(workload)

    def run_all():
        return {t: run_timeout(t) for t in (60.0, 900.0, 1e9)}

    results = once(benchmark, run_all)
    rows = [
        [
            "60 s" if t == 60.0 else ("900 s" if t == 900.0 else "never"),
            report.group_rebases,
            fmt_pct(report.bandwidth.savings),
        ]
        for t, report in results.items()
    ]
    emit(
        "ablation_rebase_timeout",
        render_table(
            ["rebase timeout", "group rebases", "savings"],
            rows,
            title="Section IV: rebase-timeout ablation",
        ),
    )
    # shorter timeout => more rebases
    assert results[60.0].group_rebases >= results[900.0].group_rebases
    assert results[1e9].group_rebases == 0


def bench_ablation_storage_budget(benchmark):
    """Storage budget: how much base-file storage does savings need?

    The paper's motivation is storage scalability; this sweep measures the
    bandwidth cost of squeezing the base-file store.  With a generous
    budget nothing is released; tight budgets force cold classes to drop
    their bases and re-adopt, converting storage pressure into extra full
    responses.
    """

    def run_budget(budget):
        site = SyntheticSite(
            SiteSpec(
                name="www.budget.example",
                categories=("laptops", "desktops"),
                products_per_category=4,
                dynamic_bytes=2200,
            )
        )
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="budget",
                requests=scaled(1200),
                users=12,
                duration=2 * 3600.0,
                revisit_bias=0.7,
            ),
        )
        config = SimulationConfig(
            verify=False,
            delta=DeltaServerConfig(
                anonymization=AnonymizationConfig(documents=3, min_count=1),
                storage_budget_bytes=budget,
            ),
        )
        simulation = Simulation([site], config)
        report = simulation.run(workload)
        used = simulation.server.storage.total_bytes(simulation.server.grouper.classes)
        releases = simulation.server.storage.stats.base_releases
        return report, used, releases

    def run_all():
        return {label: run_budget(budget) for label, budget in (
            ("unlimited", None),
            ("300 KB", 300_000),
            ("120 KB", 120_000),
            ("60 KB", 60_000),
        )}

    results = once(benchmark, run_all)
    rows = [
        [label, f"{used // 1024} KB", releases, fmt_pct(report.bandwidth.savings)]
        for label, (report, used, releases) in results.items()
    ]
    emit(
        "ablation_storage_budget",
        render_table(
            ["budget", "base storage used", "base releases", "savings"],
            rows,
            title="storage budget vs bandwidth savings",
        ),
    )
    unlimited = results["unlimited"][0].bandwidth.savings
    tight = results["60 KB"][0].bandwidth.savings
    assert unlimited >= tight  # squeezing storage can only cost savings
    assert results["unlimited"][2] == 0
    assert results["60 KB"][1] <= 60_000
