"""Section VI-C — server capacity and delta-generation cost.

Paper measurements (Pentium III 866 MHz, Apache 1.3.17):

* delta generation: 6-8 ms for a 50-60 KB base-file (delta ~8 KB raw,
  ~3 KB compressed);
* plain Apache: 175-180 requests/s, 255 concurrent connections max;
* Apache + delta-server: ~130 requests/s, but 500+ sustainable concurrent
  connections thanks to small responses releasing slots quickly.

Two parts here: (a) measure OUR differ's delta-generation cost on
paper-sized documents (pytest-benchmark timing); (b) regenerate the
capacity comparison from the calibrated cost model.
"""

from _util import emit, once

from repro.delta import VdeltaEncoder, compress, encode_delta, checksum
from repro.metrics import render_table
from repro.network import HIGH_BANDWIDTH, MODEM_56K
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import (
    CostModel,
    ServerSpec,
    compare_plain_vs_delta,
    measure_delta_cost,
    sweep_offered_load,
)


def paper_sized_pair() -> tuple[bytes, bytes]:
    """A 50-60 KB base-file and a later snapshot of the same page."""
    site = SyntheticSite(
        SiteSpec(
            name="www.cap.example",
            header_bytes=6000,
            skeleton_bytes=28000,
            detail_bytes=16000,
            dynamic_bytes=4000,
        )
    )
    page = site.all_pages()[0]
    return site.render(page, 0.0), site.render(page, 600.0)


def bench_delta_generation_cost(benchmark):
    """Time one delta generation against a prebuilt base index."""
    base, document = paper_sized_pair()
    encoder = VdeltaEncoder()
    index = encoder.index(base)

    def generate():
        result = encoder.encode_with_index(index, document)
        wire = encode_delta(result.instructions, len(base), checksum(document))
        return compress(wire)

    payload = benchmark(generate)
    measured = measure_delta_cost(base, document)
    emit(
        "capacity_delta_cost",
        render_table(
            ["", "base", "delta raw", "delta gz", "encode+compress"],
            [
                ["paper (P-III 866MHz)", "50-60 KB", "~8 KB", "~3 KB", "6-8 ms"],
                [
                    "measured (pure Python)",
                    f"{measured.base_bytes / 1024:.0f} KB",
                    f"{measured.delta_bytes / 1024:.1f} KB",
                    f"{len(payload) / 1024:.1f} KB",
                    f"{measured.total_ms:.1f} ms",
                ],
            ],
            title="delta generation cost (Section VI-C)",
        ),
    )
    assert 45_000 < measured.base_bytes < 65_000
    assert measured.total_ms < 50  # same order as the paper's figure


def bench_capacity_comparison(benchmark):
    """Plain web-server vs web-server + delta-server capacity."""
    def run():
        return {
            link.name: compare_plain_vs_delta(CostModel(), client_link=link)
            for link in (MODEM_56K, HIGH_BANDWIDTH)
        }

    results = benchmark(run)
    rows = [
        [
            "paper",
            "plain Apache",
            "175-180",
            "255 (hard limit)",
            "-",
        ],
        [
            "paper",
            "+ delta-server",
            "~130",
            "500+",
            "-",
        ],
    ]
    for link_name, (plain, delta) in results.items():
        for estimate in (plain, delta):
            rows.append(
                [
                    link_name,
                    estimate.name,
                    f"{estimate.cpu_capacity_rps:.0f}",
                    f"{estimate.sustainable_concurrency:.0f}",
                    f"{estimate.mean_hold_seconds * 1000:.0f} ms hold",
                ]
            )
    emit(
        "capacity_comparison",
        render_table(
            ["source", "configuration", "req/s (CPU)", "concurrency", "notes"],
            rows,
            title="Section VI-C capacity comparison",
        ),
    )
    plain, delta = results[MODEM_56K.name]
    assert plain.cpu_capacity_rps > delta.cpu_capacity_rps
    assert delta.sustainable_concurrency > plain.max_connections


def bench_capacity_des_sweep(benchmark):
    """Discrete-event validation of the capacity claims.

    Sweeps offered load against plain (5.6 ms CPU, ~44 KB responses) and
    delta-system (7.7 ms CPU, ~3 KB deltas) servers over two client
    populations, reporting achieved throughput and concurrency — the
    dynamic counterpart of the analytic comparison above.
    """
    loads = [30.0, 80.0, 130.0, 180.0, 230.0]

    def run_all():
        out = {}
        for link in (HIGH_BANDWIDTH, MODEM_56K):
            out[(link.name, "plain")] = sweep_offered_load(
                loads, 60.0, ServerSpec(5.6), lambda rng: 44_000, link
            )
            out[(link.name, "delta")] = sweep_offered_load(
                loads, 60.0, ServerSpec(7.7), lambda rng: 3_000, link
            )
        return out

    results = once(benchmark, run_all)
    rows = []
    for (link_name, kind), sweep in results.items():
        for r in sweep:
            rows.append(
                [
                    link_name,
                    kind,
                    f"{r.offered_rps:.0f}",
                    f"{r.achieved_rps:.0f}",
                    f"{r.rejection_rate:.0%}",
                    f"{r.cpu_utilization:.0%}",
                    f"{r.peak_concurrency}",
                ]
            )
    emit(
        "capacity_des_sweep",
        render_table(
            ["clients", "server", "offered rps", "achieved", "rejected",
             "cpu", "peak conns"],
            rows,
            title="Section VI-C, discrete-event sweep (255 connection slots)",
        ),
    )
    # Paper shape on the fast-client population: plain ~175-180 rps max,
    # delta system ~130 rps max, both CPU-bound.
    fast_plain = results[(HIGH_BANDWIDTH.name, "plain")][-1]
    fast_delta = results[(HIGH_BANDWIDTH.name, "delta")][-1]
    assert 150 <= fast_plain.achieved_rps <= 185
    assert 115 <= fast_delta.achieved_rps <= 140
    # Over slow clients the small responses are what keep the delta system
    # serving: plain collapses against the connection ceiling.
    slow_plain = results[(MODEM_56K.name, "plain")][-1]
    slow_delta = results[(MODEM_56K.name, "delta")][-1]
    assert slow_delta.achieved_rps > 2.5 * slow_plain.achieved_rps
